"""Jobs: seeded programs of collectives that tenants run on the shared fabric.

A :class:`JobSpec` is pure data — arrival time, rank count, iteration count
and a list of :class:`CollectiveCall` steps (operation, message size, dtype,
compression/algorithm options) plus a seed that derives every input buffer.
Being pure data is what makes traces replayable: serialise with
``to_dict``/``from_dict`` (see :mod:`repro.workload.arrivals` for the JSONL
framing) and a re-run compiles bit-identical programs.

:func:`compile_job` turns a spec plus a slot placement into per-step rank
program factories via the session API's capture hook
(:meth:`repro.api.Communicator.capture`): each collective is issued against a
communicator whose topology is a :class:`~repro.workload.placement.PlacementView`
of the shared fabric, so algorithm selection and hierarchical grouping see
the job's true node placement, but no virtual time elapses — the harvested
factories are replayed later on the shared multi-job engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api import Cluster, Communicator
from repro.workload.placement import PlacementView
from repro.workload.recovery import FAILURE_POLICY_MODES

__all__ = [
    "COLLECTIVE_OPS",
    "CollectiveCall",
    "CompiledJob",
    "JobSpec",
    "call_inputs",
    "compile_job",
]

#: operations a workload job may issue (each maps to one Communicator method)
COLLECTIVE_OPS = ("allreduce", "allgather", "bcast", "reduce_scatter")


@dataclass(frozen=True)
class CollectiveCall:
    """One collective step of a job's program."""

    op: str = "allreduce"
    msg_elems: int = 1024
    dtype: str = "float64"
    compression: str = "off"
    algorithm: str = "auto"

    def __post_init__(self) -> None:
        if self.op not in COLLECTIVE_OPS:
            raise ValueError(
                f"unknown collective op {self.op!r}; available: "
                f"{', '.join(COLLECTIVE_OPS)}"
            )
        if self.msg_elems < 1:
            raise ValueError(f"msg_elems must be >= 1, got {self.msg_elems}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "msg_elems": self.msg_elems,
            "dtype": self.dtype,
            "compression": self.compression,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CollectiveCall":
        return cls(**data)


@dataclass(frozen=True)
class JobSpec:
    """A tenant's workload: when it arrives, how big it is, what it runs.

    ``failure_policy`` and ``checkpoint_every`` are optional per-job
    overrides of the :class:`~repro.workload.engine.WorkloadEngine`-level
    recovery defaults (``None`` inherits them); they serialise only when
    set, so traces written before they existed round-trip unchanged.
    """

    job_id: str
    n_ranks: int
    arrival: float = 0.0
    iterations: int = 1
    seed: int = 0
    calls: Tuple[CollectiveCall, ...] = field(default_factory=lambda: (CollectiveCall(),))
    failure_policy: Optional[str] = None
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ValueError(f"a job needs n_ranks >= 2, got {self.n_ranks}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.arrival < 0.0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if not self.calls:
            raise ValueError("a job needs at least one collective call")
        if self.failure_policy is not None and self.failure_policy not in FAILURE_POLICY_MODES:
            raise ValueError(
                f"unknown failure policy {self.failure_policy!r}; "
                f"available: {', '.join(FAILURE_POLICY_MODES)}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0 (0 disables), "
                f"got {self.checkpoint_every}"
            )
        object.__setattr__(self, "calls", tuple(self.calls))

    @property
    def n_steps(self) -> int:
        """Total collective steps executed: ``iterations x len(calls)``."""
        return self.iterations * len(self.calls)

    def at_arrival(self, arrival: float) -> "JobSpec":
        """The same job arriving at a different time (isolated-baseline runs)."""
        return replace(self, arrival=float(arrival))

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "job_id": self.job_id,
            "n_ranks": self.n_ranks,
            "arrival": self.arrival,
            "iterations": self.iterations,
            "seed": self.seed,
            "calls": [call.to_dict() for call in self.calls],
        }
        # recovery overrides serialise only when set: pre-recovery traces
        # stay byte-identical and old readers keep loading new unset traces
        if self.failure_policy is not None:
            out["failure_policy"] = self.failure_policy
        if self.checkpoint_every is not None:
            out["checkpoint_every"] = self.checkpoint_every
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        fields = dict(data)
        fields["calls"] = tuple(
            CollectiveCall.from_dict(call) for call in fields.get("calls", [])
        )
        return cls(**fields)


def call_inputs(spec: JobSpec, call: CollectiveCall, step: int) -> List[np.ndarray]:
    """Seeded per-rank input vectors for one collective step of a job.

    Deterministic in ``(spec.seed, step)`` alone, so recompiling a job — the
    concurrent run and its isolated baseline compile independently — produces
    bit-identical buffers.
    """
    rng = np.random.default_rng(((spec.seed & 0xFFFFFFFF) << 16) ^ (step * 0x9E37 + 0x5EED))
    elems = call.msg_elems
    if call.op == "reduce_scatter" and elems < spec.n_ranks:
        # reduce_scatter hands each rank an elems // n_ranks chunk
        elems = spec.n_ranks
    return [
        rng.standard_normal(elems).astype(call.dtype) for _ in range(spec.n_ranks)
    ]


def _issue(comm: Communicator, call: CollectiveCall, inputs: List[np.ndarray]):
    """Issue one collective against a (capture) communicator."""
    if call.op == "allreduce":
        return comm.allreduce(
            inputs, algorithm=call.algorithm, compression=call.compression
        )
    if call.op == "allgather":
        return comm.allgather(inputs, compression=call.compression)
    if call.op == "bcast":
        return comm.bcast(inputs[0], root=0, compression=call.compression)
    return comm.reduce_scatter(inputs, compression=call.compression)


@dataclass
class CompiledJob:
    """A job bound to concrete slots, ready to run on the shared engine."""

    spec: JobSpec
    slots: Tuple[int, ...]
    #: one zero-time captured program factory per collective step
    step_factories: List[Any]
    #: the CollectiveCall behind each step (parallel to step_factories)
    step_calls: List[CollectiveCall]


def compile_job(spec: JobSpec, cluster: Cluster, slots: Tuple[int, ...]) -> CompiledJob:
    """Capture every collective step of ``spec`` against its placement.

    ``slots`` are the global engine slots the job will occupy (one per job
    rank, ascending).  The communicator the steps are captured from sees the
    fabric through a :class:`PlacementView`, so build-time decisions match
    what an isolated cluster of exactly those nodes would decide.
    """
    if len(slots) != spec.n_ranks:
        raise ValueError(
            f"job {spec.job_id!r} has {spec.n_ranks} ranks but {len(slots)} slots"
        )
    topology = cluster.topology
    view = PlacementView(topology, slots) if topology is not None else None
    job_cluster = cluster.with_updates(topology=view) if view is not None else cluster
    comm = Communicator(job_cluster, spec.n_ranks)
    factories: List[Any] = []
    step_calls: List[CollectiveCall] = []
    for _ in range(spec.iterations):
        for call in spec.calls:
            inputs = call_inputs(spec, call, len(factories))
            captured = comm.capture(
                lambda c, call=call, inputs=inputs: _issue(c, call, inputs)
            )
            if captured.n_ranks != spec.n_ranks:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"captured a {captured.n_ranks}-rank program for a "
                    f"{spec.n_ranks}-rank job"
                )
            factories.append(captured.program_factory)
            step_calls.append(call)
    return CompiledJob(
        spec=spec, slots=tuple(slots), step_factories=factories, step_calls=step_calls
    )
