"""WorkloadEngine: N concurrent jobs multiplexed onto one simulated fabric.

The multi-tenant core.  One :class:`~repro.mpisim.engine.Engine` spans every
slot of the shared fabric (``n_fabric_nodes x ranks_per_node``), starts with
all slots idle, and is driven by scheduled arrival events:

1. a job arrives (``schedule_event`` at its arrival time) and asks the
   :class:`~repro.workload.placement.NodeAllocator` for whole nodes;
2. if placed, its collective steps are *compiled* on the spot — captured via
   :meth:`repro.api.Communicator.capture` against a
   :class:`~repro.workload.placement.PlacementView` of the live fabric — and
   bound onto the engine's global slots (:meth:`Engine.bind_job`) with tags
   offset per step and barriers scoped to the job's slot group;
3. if not, it queues; every job retirement frees nodes and re-drains the
   queue first-fit in arrival order;
4. flows of different jobs meet in the fabric's shared stages, where
   ``contention="fair"`` max-min fair sharing arbitrates across tenants
   (and attributes delivered bytes per job via the registry's group
   accounting).

Degenerate guarantee (pinned by ``tests/workload``): a single job arriving
at t=0 on a packed placement replays the standalone Communicator simulation
bit-for-bit — same makespan, same values — because identity slot mapping,
zero tag offsets and the group barrier over all job slots reproduce the
exact event sequence a dedicated engine would pop.

Slowdown baselines re-run each job *alone* on the same slots (arrival 0,
freshly compiled — seeded inputs make recompiles bit-identical), so
``makespan / isolated`` isolates cross-tenant interference from placement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from dataclasses import dataclass, replace

from repro.api import Cluster
from repro.faults import FaultInjector, FaultSchedule
from repro.mpisim.backends import DEFAULT_MAX_COMMANDS
from repro.mpisim.commands import Barrier, Irecv, Isend, Probe
from repro.mpisim.engine import Engine, EngineJob
from repro.workload.job import CompiledJob, JobSpec, compile_job
from repro.workload.metrics import JobRecord, WorkloadReport, accumulate_stage_time
from repro.workload.placement import NodeAllocator, slots_for
from repro.workload.recovery import (
    AttemptRecord,
    CheckpointPolicy,
    FailurePolicy,
    JobFailed,
)

__all__ = ["TAG_STRIDE", "WorkloadEngine"]

#: tag offset between successive collective steps of one job.  Collective
#: programs use small tags; striding steps 2^22 apart keeps a step's Probe
#: polls from observing a later step's sends (MPI non-overtaking already
#: orders the point-to-point matching itself).
TAG_STRIDE = 1 << 22


def _translated(
    program: Generator,
    slots: Tuple[int, ...],
    tag_offset: int,
    group: Tuple[int, ...],
) -> Generator:
    """Rewrite a job-local rank program into shared-fabric coordinates.

    Local rank ids in ``Isend``/``Irecv``/``Probe`` become global slot ids,
    tags shift by the step's stride, and barriers are scoped to the job's
    slot group so idle or foreign slots never deadlock them.  Command
    objects are mutated in place — every program in this repository yields
    freshly constructed commands.
    """
    outcome = None
    while True:
        try:
            command = program.send(outcome)
        except StopIteration as stop:
            return stop.value
        ctype = type(command)
        if ctype is Isend:
            command.dest = slots[command.dest]
            command.tag += tag_offset
        elif ctype is Irecv:
            command.source = slots[command.source]
            command.tag += tag_offset
        elif ctype is Probe:
            command.source = slots[command.source]
            command.tag += tag_offset
        elif ctype is Barrier:
            command.group = group
        outcome = yield command


def _job_program(
    engine: Engine,
    compiled: CompiledJob,
    local: int,
    record: JobRecord,
    record_values: bool,
    start_step: int = 0,
) -> Generator:
    """One slot's whole job: its rank program of every step, back to back.

    ``start_step`` skips steps already covered by a durable checkpoint
    (restart attempts resume mid-program); tags keep their *global* step
    stride so a restarted step matches exactly the messages it would have
    matched the first time.
    """
    slot = compiled.slots[local]
    n_ranks = compiled.spec.n_ranks
    value = None
    for step in range(start_step, len(compiled.step_factories)):
        factory = compiled.step_factories[step]
        begin = engine.clock_of(slot)
        value = yield from _translated(
            factory(local, n_ranks), compiled.slots, step * TAG_STRIDE, compiled.slots
        )
        record.note_step(
            step, local, begin, engine.clock_of(slot), value if record_values else None
        )
    return value


@dataclass
class _Tenancy:
    """One live execution attempt of a job on the shared fabric."""

    spec: JobSpec
    record: JobRecord
    job: EngineJob
    nodes: Tuple[int, ...]
    slots: Tuple[int, ...]
    started: float


class WorkloadEngine:
    """Runs a job mix on one shared fabric and reports tenant-level metrics.

    Parameters
    ----------
    cluster:
        The shared machine.  Its topology must fix a node count — a preset
        fabric (``fat_tree`` / ``dragonfly`` / ``rail_fat_tree``) via
        ``n_fabric_nodes``, or any block-placed topology with ``nodes=``
        passed explicitly.  ``contention="fair"`` is the intended discipline
        for cross-tenant arbitration; reservation mode works too (and is
        what the degenerate-equivalence tests pin).
    nodes:
        Node count override for topologies that size themselves per run
        (``shared_uplink``, ``two_level``).
    policy / seed:
        Placement policy (``packed``/``spread``/``random``) and the seed
        driving its random variant.
    record_values:
        Keep per-step per-rank collective results on each
        :class:`JobRecord` (the equivalence tests read them; large runs
        leave this off).
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule` injected into
        the *concurrent* run (a :class:`~repro.faults.injector.FaultInjector`
        is installed on the shared engine before ``run()``).  Node-loss
        events quarantine the node in the allocator — and *kill* the jobs
        running on it: their in-flight collectives are torn down
        (``Engine.kill_job``), fair-share flows are cancelled with their
        bandwidth re-divided immediately, and the per-job failure policy
        decides what happens next.  Transient losses heal: the node is
        un-quarantined when its duration elapses.  Isolated baselines run
        fault-free on purpose: the reported slowdown then includes the
        fault impact alongside cross-tenant interference.  ``None`` or an
        empty schedule changes nothing, bit-for-bit.
    failure_policy:
        Engine-level default :class:`~repro.workload.recovery.FailurePolicy`
        (or bare mode string) applied to jobs whose spec does not override
        it.  Default ``"fail"``.
    checkpoint:
        Engine-level default
        :class:`~repro.workload.recovery.CheckpointPolicy` (or bare
        interval int; 0/None disables) for jobs whose spec does not
        override it.  Checkpoint costs are metered out-of-band — they
        never perturb the event heap — so any policy combination is
        bit-for-bit identical to the uninjected run when no fault fires.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        nodes: Optional[int] = None,
        policy: str = "packed",
        seed: int = 0,
        record_values: bool = False,
        max_commands: int = DEFAULT_MAX_COMMANDS,
        faults: Optional[FaultSchedule] = None,
        failure_policy: Any = "fail",
        checkpoint: Any = None,
    ) -> None:
        topology = cluster.topology
        if topology is None:
            raise ValueError(
                "WorkloadEngine needs a cluster with an explicit topology "
                "(build one with Cluster.from_preset)"
            )
        if getattr(topology, "placement", None) is not None:
            raise ValueError(
                "the workload layer owns placement; build the cluster without "
                "an explicit placement list"
            )
        self.cluster = cluster
        self.ranks_per_node = int(getattr(topology, "ranks_per_node", 1))
        fabric_nodes = getattr(topology, "n_fabric_nodes", None)
        if fabric_nodes is None:
            fabric_nodes = nodes
        if fabric_nodes is None:
            raise ValueError(
                f"topology {topology.describe()!r} does not fix a node count; "
                "pass nodes="
            )
        self.n_nodes = int(fabric_nodes)
        self.total_slots = self.n_nodes * self.ranks_per_node
        for slot in range(self.total_slots):
            if topology.node_of(slot) != slot // self.ranks_per_node:
                raise ValueError(
                    "workload slot mapping requires the fabric's native block "
                    f"placement; slot {slot} maps to node {topology.node_of(slot)}"
                )
        self.policy = policy
        self.seed = int(seed)
        self.record_values = bool(record_values)
        self.max_commands = int(max_commands)
        self.faults = faults if faults is not None else FaultSchedule()
        self.failure_policy = FailurePolicy.coerce(failure_policy)
        self.checkpoint = CheckpointPolicy.coerce(checkpoint)

    # ------------------------------------------------------------------ runs

    def run(self, jobs: Sequence[JobSpec], *, baseline: bool = True) -> WorkloadReport:
        """Simulate the whole mix; optionally add isolated-run baselines."""
        specs = sorted(jobs, key=lambda s: (s.arrival, s.job_id))
        if len({s.job_id for s in specs}) != len(specs):
            raise ValueError("job ids must be unique within one run")
        losable = len(self.faults.permanent_node_losses())
        for spec in specs:
            if self._nodes_needed(spec) > self.n_nodes - losable:
                raise ValueError(
                    f"job {spec.job_id!r} needs {self._nodes_needed(spec)} nodes "
                    f"but the fabric has {self.n_nodes}"
                    + (
                        f" of which {losable} may be lost to faults"
                        if losable
                        else ""
                    )
                )
        records, engine = self._run_concurrent(specs)
        report = self._collect(records, engine)
        if baseline:
            for record in records:
                if record.completed:
                    record.isolated = self._isolated_makespan(
                        record.spec, record.slots
                    )
        return report

    def isolated_makespan(self, spec: JobSpec, slots: Optional[Sequence[int]] = None) -> float:
        """Makespan of one job alone on the fabric (packed slots by default)."""
        if slots is None:
            nodes = NodeAllocator(self.n_nodes, "packed", self.seed).allocate(
                self._nodes_needed(spec)
            )
            assert nodes is not None  # fit was validated by the caller
            slots = slots_for(nodes, self.ranks_per_node, spec.n_ranks)
        return self._isolated_makespan(spec, tuple(slots))

    # -------------------------------------------------------------- internals

    def _nodes_needed(self, spec: JobSpec) -> int:
        return -(-spec.n_ranks // self.ranks_per_node)

    def _policy_for(self, spec: JobSpec) -> FailurePolicy:
        """The job's failure policy: spec override over the engine default."""
        if spec.failure_policy is None:
            return self.failure_policy
        return replace(self.failure_policy, mode=spec.failure_policy)

    def _checkpoint_for(self, spec: JobSpec) -> Optional[CheckpointPolicy]:
        """The job's checkpoint policy: spec override over the engine default."""
        if spec.checkpoint_every is None:
            return self.checkpoint
        if spec.checkpoint_every == 0:
            return None
        if self.checkpoint is not None:
            return replace(self.checkpoint, every=spec.checkpoint_every)
        return CheckpointPolicy(every=spec.checkpoint_every)

    def _fresh_engine(self) -> Engine:
        return Engine(
            n_ranks=self.total_slots,
            program_factory=None,
            network=self.cluster.network,
            topology=self.cluster.topology,
            max_commands=self.max_commands,
        )

    def _compile_cluster(self, engine: Engine) -> Cluster:
        """The cluster jobs compile against (the engine's live topology)."""
        if engine.topology is self.cluster.topology:
            return self.cluster
        # the engine upgraded the topology to its fair clone: compile against
        # that clone so build-time decisions see the fabric that will run
        return self.cluster.with_updates(topology=engine.topology)

    def _run_concurrent(
        self, specs: List[JobSpec]
    ) -> Tuple[List[JobRecord], Engine]:
        engine = self._fresh_engine()
        compile_cluster = self._compile_cluster(engine)
        allocator = NodeAllocator(self.n_nodes, self.policy, self.seed)
        records = {spec.job_id: JobRecord(spec=spec) for spec in specs}
        pending: List[JobSpec] = []
        running: Dict[str, _Tenancy] = {}
        # retry-budget bookkeeping (kills + failed placements both count)
        retries_used: Dict[str, int] = {}

        def start_attempt(spec: JobSpec, now: float, nodes: Tuple[int, ...]) -> None:
            slots = tuple(slots_for(nodes, self.ranks_per_node, spec.n_ranks))
            compiled = compile_job(spec, compile_cluster, slots)
            record = records[spec.job_id]
            resume = record.last_durable_step
            if record.started is None:
                record.started = now
                record.prepare(spec.n_steps)
            else:
                # a restart: count it, remember the outage gap, and forget
                # per-step observations the new attempt will re-produce
                record.restarts += 1
                record.recovery_times.append(now - record.attempts[-1].ended)
                record.reset_steps_from(resume)
            record.nodes = nodes
            record.slots = slots
            record.resume_step = resume
            programs: Dict[int, Callable[[], Generator]] = {
                slot: (
                    lambda local=local: _job_program(
                        engine,
                        compiled,
                        local,
                        record,
                        self.record_values,
                        start_step=resume,
                    )
                )
                for local, slot in enumerate(slots)
            }
            job = engine.bind_job(
                now,
                programs,
                tag=spec.job_id,
                on_retire=lambda job, spec=spec: retire(job, spec),
            )
            running[spec.job_id] = _Tenancy(
                spec=spec,
                record=record,
                job=job,
                nodes=nodes,
                slots=slots,
                started=now,
            )

        def try_start(spec: JobSpec, now: float) -> bool:
            nodes = allocator.allocate(self._nodes_needed(spec))
            if nodes is None:
                return False
            start_attempt(spec, now, nodes)
            return True

        def drain(now: float) -> None:
            # first-fit drain in arrival order: a big job at the head does
            # not starve smaller jobs behind it, but started jobs keep
            # arrival order whenever they all fit
            started = [spec for spec in pending if try_start(spec, now)]
            for spec in started:
                pending.remove(spec)

        def account_checkpoints(
            record: JobRecord, spec: JobSpec, upto: int, kill_time: Optional[float]
        ) -> int:
            """Book checkpoint writes for steps ``[resume_step, upto)``.

            Returns the durable resume step: with ``kill_time`` set, only
            checkpoints whose write committed (step exit + cost <= kill)
            count — a write caught mid-flight protects nothing.
            """
            policy = self._checkpoint_for(spec)
            durable = record.last_durable_step
            if policy is None:
                return durable
            for step in range(record.resume_step, upto):
                if not policy.takes_after(step, spec.n_steps):
                    continue
                cost = policy.cost(spec, step)
                record.checkpoints_written += 1
                record.checkpoint_overhead += cost
                if kill_time is None:
                    durable = max(durable, step + 1)
                else:
                    committed = record.step_bounds[step][1] + cost
                    if committed <= kill_time:
                        durable = max(durable, step + 1)
            return durable

        def retire(job: EngineJob, spec: JobSpec) -> None:
            tenancy = running.pop(spec.job_id)
            record = tenancy.record
            record.finished = job.finished
            record.bytes_sent += job.bytes_sent
            record.messages_sent += job.messages_sent
            record.outcome = "completed"
            record.useful_time += job.finished - tenancy.started
            account_checkpoints(record, spec, spec.n_steps, None)
            record.last_durable_step = spec.n_steps
            allocator.release(tenancy.nodes)
            drain(job.finished)

        def finalize_failed(record: JobRecord, now: float, reason: str) -> None:
            record.outcome = "failed"
            record.failure = JobFailed(
                job_id=record.spec.job_id,
                time=now,
                reason=reason,
                attempts=len(record.attempts),
            )
            # a failed job's retained progress is lost with it
            record.wasted_time += record.useful_time
            record.useful_time = 0.0

        def schedule_retry(spec: JobSpec, now: float, reason: str) -> None:
            """Back off and retry, or fail for good once the budget is gone."""
            record = records[spec.job_id]
            policy = self._policy_for(spec)
            used = retries_used.get(spec.job_id, 0)
            if not policy.restarts or used >= policy.max_retries:
                finalize_failed(record, now, reason)
                return
            retries_used[spec.job_id] = used + 1
            engine.schedule_event(
                now + policy.delay(used), retry_callback(spec, reason)
            )

        def retry_callback(spec: JobSpec, reason: str) -> Callable[[float], None]:
            def fire(now: float) -> None:
                record = records[spec.job_id]
                policy = self._policy_for(spec)
                if policy.mode == "restart":
                    # in-place: the original node set, whole or not at all
                    nodes = record.attempts[-1].nodes
                    placed = allocator.acquire(nodes)
                    nodes = nodes if placed else None
                else:  # restart_elsewhere
                    nodes = allocator.allocate(self._nodes_needed(spec))
                if nodes is None:
                    schedule_retry(spec, now, reason)
                    return
                start_attempt(spec, now, nodes)

            return fire

        def fail_attempt(tenancy: _Tenancy, node: int, now: float) -> None:
            spec, record = tenancy.spec, tenancy.record
            del running[spec.job_id]
            engine.kill_job(tenancy.job, now)
            record.bytes_sent += tenancy.job.bytes_sent
            record.messages_sent += tenancy.job.messages_sent
            done = record.completed_through()
            durable = account_checkpoints(record, spec, done, now)
            if durable > record.resume_step:
                useful = record.step_bounds[durable - 1][1] - tenancy.started
            else:
                useful = 0.0
            record.useful_time += useful
            record.wasted_time += max(0.0, (now - tenancy.started) - useful)
            record.attempts.append(
                AttemptRecord(
                    index=len(record.attempts),
                    nodes=tenancy.nodes,
                    slots=tenancy.slots,
                    started=tenancy.started,
                    resume_step=record.resume_step,
                    ended=now,
                    completed_steps=done - record.resume_step,
                    next_resume_step=durable,
                    reason=f"node_loss:{node}",
                )
            )
            record.last_durable_step = durable
            allocator.release(tenancy.nodes)
            schedule_retry(spec, now, f"node_loss:{node}")

        def on_node_loss(node: int, now: float) -> None:
            allocator.quarantine(node)
            for tenancy in [t for t in running.values() if node in t.nodes]:
                fail_attempt(tenancy, node, now)
            drain(now)

        def on_node_heal(node: int, now: float) -> None:
            if node in allocator.quarantined:
                allocator.unquarantine(node)
            drain(now)

        if not self.faults.empty:
            # faults interleave with arrivals on the same event heap; node
            # loss additionally quarantines the node (so the drain never
            # re-places a queued job on dead hardware) and kills the jobs
            # running on it, handing them to their failure policies
            FaultInjector(
                self.faults,
                on_node_loss=on_node_loss,
                on_node_heal=on_node_heal,
            ).install(engine)

        def arrival(spec: JobSpec) -> Callable[[float], None]:
            def fire(now: float) -> None:
                if not try_start(spec, now):
                    pending.append(spec)

            return fire

        for spec in specs:
            engine.schedule_event(spec.arrival, arrival(spec))
        with accumulate_stage_time() as occupied:
            engine.run()
        if pending:  # pragma: no cover - fit is validated upfront
            raise RuntimeError(
                f"jobs never placed: {[s.job_id for s in pending]}"
            )
        ordered = [records[spec.job_id] for spec in specs]
        for record in ordered:
            if record.finished is None and record.outcome != "failed":
                # pragma: no cover - defensive
                raise RuntimeError(f"job {record.spec.job_id!r} never retired")
        self._last_stage_time = occupied
        return ordered, engine

    def _collect(self, records: List[JobRecord], engine: Engine) -> WorkloadReport:
        registry = engine.topology.fair_registry if engine.topology is not None else None
        if registry is not None:
            for record in records:
                record.fair_bytes = registry.group_bytes.get(record.spec.job_id, 0.0)
        # failed jobs never retire: their terminal event still bounds the run
        endings = [
            record.finished if record.finished is not None else record.failure.time
            for record in records
        ]
        makespan = max(endings, default=0.0)
        names = self._stage_names(engine.topology)
        utilization: Dict[str, float] = {}
        if makespan > 0.0:
            for sid, (stage, seconds) in self._last_stage_time.items():
                name = names.get(sid, f"stage-{len(utilization)}")
                utilization[name] = seconds / makespan
        return WorkloadReport(
            records=records,
            makespan=makespan,
            policy=self.policy,
            contention=engine.topology.contention if engine.topology is not None else "none",
            seed=self.seed,
            stage_utilization=utilization,
            latency=WorkloadReport.collect_latency(records),
        )

    @staticmethod
    def _stage_names(topology: Any) -> Dict[int, str]:
        stages = getattr(topology, "_stages", None) or {}
        names: Dict[int, str] = {}
        for key, stage in stages.items():
            if isinstance(key, tuple):
                names[id(stage)] = ":".join(str(part) for part in key)
            else:
                names[id(stage)] = str(key)
        return names

    def _isolated_makespan(self, spec: JobSpec, slots: Tuple[int, ...]) -> float:
        engine = self._fresh_engine()
        compiled = compile_job(spec.at_arrival(0.0), self._compile_cluster(engine), slots)
        record = JobRecord(spec=spec)
        record.prepare(spec.n_steps)
        programs: Dict[int, Callable[[], Generator]] = {
            slot: (
                lambda local=local: _job_program(engine, compiled, local, record, False)
            )
            for local, slot in enumerate(slots)
        }
        outcome: List[float] = []
        engine.schedule_event(
            0.0,
            lambda now: engine.bind_job(
                now,
                {s: p for s, p in programs.items()},
                tag=spec.job_id,
                on_retire=lambda job: outcome.append(job.finished),
            ),
        )
        engine.run()
        if not outcome:  # pragma: no cover - defensive
            raise RuntimeError(f"isolated run of {spec.job_id!r} never retired")
        return outcome[0]
