"""Arrival processes and replayable job traces.

:class:`JobMix` draws a seeded Poisson job stream: exponential inter-arrival
gaps at ``arrival_rate`` jobs per second of *virtual* time, with sizes,
message sizes, ops, compression modes and iteration counts sampled from the
mix's (weighted-by-repetition) choice tuples.  The same ``(mix, seed)`` pair
always generates the same :class:`~repro.workload.job.JobSpec` list.

Traces are JSONL: one ``JobSpec.to_dict()`` object per line, in arrival
order.  ``save_trace``/``load_trace`` round-trip exactly, so a generated
workload can be archived, edited by hand, and replayed bit-for-bit with
``python -m repro.workload replay``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.faults import FAULT_MIXES, FaultSchedule
from repro.workload.job import COLLECTIVE_OPS, CollectiveCall, JobSpec

__all__ = ["JobMix", "load_trace", "save_trace"]


@dataclass(frozen=True)
class JobMix:
    """A seeded distribution over jobs (the knobs of the arrival process)."""

    n_jobs: int = 8
    #: Poisson arrival rate in jobs per second of virtual time.  Collective
    #: makespans on the calibrated network sit in the low milliseconds, so
    #: rates of a few hundred produce genuine overlap.
    arrival_rate: float = 300.0
    sizes: Tuple[int, ...] = (2, 4, 8)
    msg_elems: Tuple[int, ...] = (1024, 4096, 16384)
    ops: Tuple[str, ...] = COLLECTIVE_OPS
    compressions: Tuple[str, ...] = ("off", "on", "auto")
    dtypes: Tuple[str, ...] = ("float64",)
    calls_range: Tuple[int, int] = (1, 3)
    iterations_range: Tuple[int, int] = (1, 2)
    #: named fault mix injected alongside the jobs (see
    #: :data:`repro.faults.FAULT_MIXES`); ``"none"`` keeps the mix fault-free
    #: and every generated trace identical to the pre-fault-knob behaviour
    fault_mix: str = "none"

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.arrival_rate <= 0.0:
            raise ValueError(f"arrival_rate must be > 0, got {self.arrival_rate}")
        if self.fault_mix not in FAULT_MIXES:
            raise ValueError(
                f"unknown fault mix {self.fault_mix!r}; "
                f"available: {', '.join(FAULT_MIXES)}"
            )

    def fault_schedule(
        self,
        seed: int,
        *,
        n_nodes: int,
        n_ranks: Optional[int] = None,
        nics_per_node: int = 1,
        horizon: float = 2e-3,
    ) -> FaultSchedule:
        """The mix's seeded fault scenario, sized for one fabric.

        Delegates to :meth:`repro.faults.FaultSchedule.generate` with this
        mix's ``fault_mix``; fault draws use their own seeded stream, so the
        job trace of :meth:`generate` is untouched by the fault knob.
        """
        return FaultSchedule.generate(
            self.fault_mix,
            seed,
            n_nodes=n_nodes,
            n_ranks=n_ranks,
            nics_per_node=nics_per_node,
            horizon=horizon,
        )

    def generate(self, seed: int) -> List[JobSpec]:
        """Draw the job list for one seed (deterministic, arrival-ordered)."""
        rng = random.Random(seed)
        specs: List[JobSpec] = []
        clock = 0.0
        for index in range(self.n_jobs):
            clock += rng.expovariate(self.arrival_rate)
            n_ranks = rng.choice(self.sizes)
            calls = []
            for _ in range(rng.randint(*self.calls_range)):
                op = rng.choice(self.ops)
                elems = rng.choice(self.msg_elems)
                calls.append(
                    CollectiveCall(
                        op=op,
                        msg_elems=max(elems, n_ranks) if op == "reduce_scatter" else elems,
                        dtype=rng.choice(self.dtypes),
                        compression=rng.choice(self.compressions),
                    )
                )
            specs.append(
                JobSpec(
                    job_id=f"job{index:03d}",
                    n_ranks=n_ranks,
                    arrival=clock,
                    iterations=rng.randint(*self.iterations_range),
                    seed=seed * 1_000_003 + index,
                    calls=tuple(calls),
                )
            )
        return specs


def save_trace(specs: Sequence[JobSpec], path: Union[str, Path]) -> None:
    """Write jobs as JSONL (one ``JobSpec`` object per line, arrival order)."""
    with open(path, "w", encoding="utf-8") as fh:
        for spec in specs:
            fh.write(json.dumps(spec.to_dict(), sort_keys=True) + "\n")


def load_trace(path: Union[str, Path]) -> List[JobSpec]:
    """Read a JSONL job trace written by :func:`save_trace` (or by hand)."""
    specs: List[JobSpec] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            specs.append(JobSpec.from_dict(json.loads(line)))
    return specs
