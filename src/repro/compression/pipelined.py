"""PIPE-SZx: the pipelined SZx variant customised for collective communication.

Section III-E2 of the paper redesigns the SZx workflow so compression can be
interleaved with MPI progress polling:

* the input is divided into chunks of 5120 values;
* each chunk is compressed independently;
* the compressed chunk sizes are stored together in an index at the *front* of
  the output buffer (instead of interleaved with the data), which is both
  cache-friendly and lets the decompressor locate every chunk without parsing;
* between chunks the caller gets control back, so it can poll the progress of
  outstanding non-blocking sends/receives (``MPI_Test``-style).

This module provides the one-shot :class:`PipelinedSZx` codec (drop-in
compatible with every other :class:`~repro.compression.base.Compressor`) plus
the incremental generator API (:meth:`PipelinedSZx.iter_compress`,
:meth:`PipelinedSZx.iter_decompress`) used by the collective computation
framework to overlap communication with (de)compression.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.compression.base import Compressor, check_compressible
from repro.compression.errors import DecompressionError
from repro.compression.header import PayloadHeader
from repro.compression.szx import DEFAULT_BLOCK_SIZE, SZxCompressor
from repro.utils.chunking import chunk_bounds
from repro.utils.validation import ensure_positive

__all__ = ["PipelinedSZx", "CompressedChunk", "DEFAULT_CHUNK_ELEMS"]

_MAGIC = b"PSZX"
_INDEX_HEADER = struct.Struct("<II")  # chunk_elems, n_chunks

#: the chunk granularity used by the paper (5120 data points per chunk)
DEFAULT_CHUNK_ELEMS = 5120


@dataclass(frozen=True)
class CompressedChunk:
    """One compressed chunk produced by :meth:`PipelinedSZx.iter_compress`."""

    index: int
    start: int
    stop: int
    payload: bytes

    @property
    def nbytes(self) -> int:
        """Compressed size of this chunk."""
        return len(self.payload)

    @property
    def n_elements(self) -> int:
        """Number of original elements covered by this chunk."""
        return self.stop - self.start


class PipelinedSZx(Compressor):
    """Chunked SZx with a front-of-buffer chunk-size index.

    Parameters
    ----------
    error_bound:
        Absolute error bound forwarded to the per-chunk SZx codec.
    chunk_elems:
        Values per pipeline chunk (5120 in the paper).
    block_size:
        SZx block size inside each chunk.
    """

    name = "pipe_szx"
    error_bounded = True

    def __init__(
        self,
        error_bound: float = 1e-3,
        chunk_elems: int = DEFAULT_CHUNK_ELEMS,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.error_bound = ensure_positive(error_bound, "error_bound")
        if chunk_elems < 1:
            raise ValueError(f"chunk_elems must be >= 1, got {chunk_elems}")
        self.chunk_elems = int(chunk_elems)
        self.block_size = int(block_size)
        self._inner = SZxCompressor(error_bound=error_bound, block_size=block_size)

    # ------------------------------------------------------------------ API

    def describe(self) -> dict:
        return {
            "name": self.name,
            "error_bounded": True,
            "error_bound": self.error_bound,
            "chunk_elems": self.chunk_elems,
            "block_size": self.block_size,
        }

    def chunk_count(self, n_elements: int) -> int:
        """Number of pipeline chunks used for ``n_elements`` values."""
        if n_elements <= 0:
            return 0
        return (n_elements + self.chunk_elems - 1) // self.chunk_elems

    # ------------------------------------------------------ incremental API

    def iter_compress(self, data) -> Iterator[CompressedChunk]:
        """Compress ``data`` chunk by chunk, yielding after every chunk.

        The caller regains control between chunks — exactly the hook the
        collective computation framework uses to poll communication progress.
        """
        arr = check_compressible(data)
        for index, (start, stop) in enumerate(chunk_bounds(arr.size, self.chunk_elems)):
            payload = self._inner.compress_bytes(arr[start:stop])
            yield CompressedChunk(index=index, start=start, stop=stop, payload=payload)

    def assemble(self, chunks: Sequence[CompressedChunk], count: int, dtype) -> bytes:
        """Assemble chunk payloads into the single self-describing PIPE-SZx buffer.

        The per-chunk compressed sizes are written as a contiguous index right
        after the header (the "pre-allocated space at the front of the buffer"
        described in the paper), followed by the concatenated chunk payloads.
        """
        chunks = sorted(chunks, key=lambda c: c.index)
        expected = self.chunk_count(count)
        if len(chunks) != expected:
            raise ValueError(f"expected {expected} chunks for {count} elements, got {len(chunks)}")
        header = PayloadHeader(
            magic=_MAGIC, dtype=np.dtype(dtype), count=count, param=self.error_bound
        )
        sizes = np.asarray([c.nbytes for c in chunks], dtype=np.uint32)
        out = bytearray()
        out += header.pack()
        out += _INDEX_HEADER.pack(self.chunk_elems, len(chunks))
        out += sizes.tobytes()
        for chunk in chunks:
            out += chunk.payload
        return bytes(out)

    def iter_decompress(self, payload: bytes) -> Iterator[np.ndarray]:
        """Decompress a PIPE-SZx buffer chunk by chunk (in element order)."""
        _header, chunk_payloads = self._parse(payload)
        for piece in chunk_payloads:
            yield self._inner.decompress_bytes(piece)

    def compress_with_progress(
        self, data, progress: Optional[Callable[[int, int], None]] = None
    ) -> bytes:
        """Compress ``data``, invoking ``progress(done, total)`` after each chunk.

        This is the callback-style twin of :meth:`iter_compress`, convenient
        for callers that only need a progress hook (e.g. MPI_Test polling).
        """
        arr = check_compressible(data)
        total = self.chunk_count(arr.size)
        chunks: List[CompressedChunk] = []
        for chunk in self.iter_compress(arr):
            chunks.append(chunk)
            if progress is not None:
                progress(len(chunks), total)
        return self.assemble(chunks, arr.size, arr.dtype)

    def decompress_with_progress(
        self, payload: bytes, progress: Optional[Callable[[int, int], None]] = None
    ) -> np.ndarray:
        """Decompress, invoking ``progress(done, total)`` after each chunk."""
        header, chunk_payloads = self._parse(payload)
        out = np.empty(header.count, dtype=header.dtype)
        pos = 0
        total = len(chunk_payloads)
        for done, piece in enumerate(chunk_payloads, start=1):
            part = self._inner.decompress_bytes(piece)
            out[pos : pos + part.size] = part
            pos += part.size
            if progress is not None:
                progress(done, total)
        if pos != header.count:
            raise DecompressionError(
                f"chunk element counts ({pos}) do not add up to the header count ({header.count})"
            )
        return out

    # ----------------------------------------------------------- one-shot API

    def compress_bytes(self, data: np.ndarray) -> bytes:
        return self.compress_with_progress(data, progress=None)

    def decompress_bytes(self, payload: bytes) -> np.ndarray:
        return self.decompress_with_progress(payload, progress=None)

    # -------------------------------------------------------------- internal

    def _parse(self, payload: bytes):
        header = PayloadHeader.unpack(payload, _MAGIC)
        offset = PayloadHeader.SIZE
        if len(payload) < offset + _INDEX_HEADER.size:
            raise DecompressionError("truncated PIPE-SZx payload (missing chunk index header)")
        chunk_elems, n_chunks = _INDEX_HEADER.unpack_from(payload, offset)
        offset += _INDEX_HEADER.size
        if chunk_elems <= 0:
            raise DecompressionError("invalid PIPE-SZx chunk size")
        expected = (header.count + chunk_elems - 1) // chunk_elems if header.count else 0
        if n_chunks != expected:
            raise DecompressionError(
                f"chunk index announces {n_chunks} chunks but the header count implies {expected}"
            )
        sizes = np.frombuffer(payload, dtype=np.uint32, count=n_chunks, offset=offset)
        offset += 4 * n_chunks
        # vectorised cursor precomputation over the front-of-buffer index: one
        # cumsum gives every chunk's byte range, and a single total-length
        # check replaces the per-chunk truncation test
        ends = offset + np.cumsum(sizes, dtype=np.int64)
        if n_chunks and len(payload) < int(ends[-1]):
            raise DecompressionError("truncated PIPE-SZx payload (missing chunk data)")
        starts = ends - sizes
        pieces: List[bytes] = [
            payload[int(start) : int(end)] for start, end in zip(starts, ends)
        ]
        return header, pieces
