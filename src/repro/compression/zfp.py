"""ZFP-style transform codec with fixed-accuracy (ABS) and fixed-rate (FXR) modes.

The paper uses ZFP 0.5.5 in two modes as baselines:

* **ABS (fixed accuracy)** — the user provides an absolute error bound; the
  compressed size varies with the data.
* **FXR (fixed rate)** — the user provides a rate in bits per value; the
  compressed size is exact and data independent, but the reconstruction error
  is *unbounded* (this is the root of the accuracy problems the paper
  demonstrates for fixed-rate baselines).

This module implements a from-scratch, numpy-only codec with the same two
modes and the same qualitative behaviour.  It is a ZFP-*style* codec, not a
bit-exact reimplementation of ZFP: data is processed in 1-D blocks (16 values),
each block is decorrelated with a multi-level Haar transform (DC + 15 detail
coefficients), and the coefficients are uniformly quantised.

* In ABS mode the quantisation step is derived from the error bound with a
  margin that accounts for the inverse-transform error gain, so the point-wise
  reconstruction error stays within the bound; per-block bit widths adapt to
  the data (all-zero blocks cost a single flag bit).
* In FXR mode every block gets exactly ``block_size * rate`` bits (one shared
  block exponent plus equally-sized coefficient fields, padded to the budget),
  which yields an exact compression ratio of ``bits_per_value / rate`` and a
  data-dependent, unbounded error — exactly the trade-off the paper exploits
  when comparing against fixed-rate baselines.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List

import numpy as np

from repro.compression.base import Compressor
from repro.compression.errors import CompressionError, DecompressionError
from repro.compression.header import PayloadHeader
from repro.utils.bitpack import pack_uint_bits, unpack_uint_bits
from repro.utils.validation import ensure_in, ensure_positive

__all__ = ["ZFPCompressor", "MODE_ABS", "MODE_FXR", "DEFAULT_ZFP_BLOCK"]

_MAGIC = b"ZFP1"
_BODY_HEADER = struct.Struct("<BBHI")  # mode, reserved, block_size, n_blocks

MODE_ABS = "abs"
MODE_FXR = "fxr"
DEFAULT_ZFP_BLOCK = 16

#: inverse Haar error gain: err(value) <= err(DC) + 0.5 * levels * err(detail);
#: with a uniform quantisation step ``s`` this is 1.5 * s for a 16-value block,
#: so a step of ``tol / _ABS_MARGIN`` keeps the point-wise error within ``tol``.
_ABS_MARGIN = 1.7

_MAX_QUANT_BITS = 48
_FXR_ZERO_EXPONENT = -128  # sentinel: the whole block quantises to zero


def _haar_forward(blocks: np.ndarray) -> np.ndarray:
    """Multi-level Haar transform of shape ``(n_blocks, block_size)`` blocks.

    Returns coefficients laid out as ``[DC, d_coarsest, ..., d_finest]`` so the
    first column is the block average.
    """
    a = blocks.astype(np.float64)
    details: List[np.ndarray] = []
    while a.shape[1] > 1:
        even = a[:, 0::2]
        odd = a[:, 1::2]
        details.append(odd - even)
        a = (even + odd) * 0.5
    return np.concatenate([a] + details[::-1], axis=1)


def _haar_inverse(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_haar_forward`."""
    n, width = coeffs.shape
    a = coeffs[:, 0:1].astype(np.float64)
    pos = 1
    size = 1
    while pos < width:
        d = coeffs[:, pos : pos + size]
        pos += size
        even = a - d * 0.5
        odd = a + d * 0.5
        merged = np.empty((n, size * 2), dtype=np.float64)
        merged[:, 0::2] = even
        merged[:, 1::2] = odd
        a = merged
        size *= 2
    return a


def _zigzag_encode(q: np.ndarray) -> np.ndarray:
    q = q.astype(np.int64)
    return np.where(q >= 0, 2 * q, -2 * q - 1).astype(np.uint64)


def _zigzag_decode(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.uint64)
    half = (u >> np.uint64(1)).astype(np.int64)
    return np.where(u & np.uint64(1), -half - 1, half)


class ZFPCompressor(Compressor):
    """ZFP-style codec supporting ``abs`` and ``fxr`` modes.

    Parameters
    ----------
    mode:
        ``"abs"`` for fixed accuracy (requires ``error_bound``) or ``"fxr"``
        for fixed rate (requires ``rate`` in bits per value).
    error_bound:
        Absolute error bound used in ABS mode.
    rate:
        Bits per value in FXR mode (the paper uses 4, 8 and 16).
    block_size:
        Values per block; must be a power of two (default 16).
    """

    error_bounded = False

    def __init__(
        self,
        mode: str = MODE_ABS,
        error_bound: float = 1e-3,
        rate: float = 8.0,
        block_size: int = DEFAULT_ZFP_BLOCK,
    ) -> None:
        self.mode = ensure_in(mode, (MODE_ABS, MODE_FXR), "mode")
        if block_size < 4 or block_size & (block_size - 1):
            raise ValueError(f"block_size must be a power of two >= 4, got {block_size}")
        self.block_size = int(block_size)
        if self.mode == MODE_ABS:
            self.error_bound = ensure_positive(error_bound, "error_bound")
            self.rate = None
            self.error_bounded = True
        else:
            self.rate = ensure_positive(rate, "rate")
            self.error_bound = None
            self.error_bounded = False
            budget_bits = int(round(self.rate * self.block_size))
            if budget_bits < 8 + self.block_size:
                raise ValueError(
                    f"rate {rate} too small for block_size {block_size}: each block needs "
                    f"at least {8 + self.block_size} bits"
                )
            self._budget_bits = budget_bits
            self._coef_bits = (budget_bits - 8) // self.block_size
            self._block_bytes = (budget_bits + 7) // 8

    # ------------------------------------------------------------------ API

    @property
    def name(self) -> str:  # type: ignore[override]
        return "zfp_abs" if self.mode == MODE_ABS else "zfp_fxr"

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "name": self.name,
            "mode": self.mode,
            "block_size": self.block_size,
            "error_bounded": self.error_bounded,
        }
        if self.mode == MODE_ABS:
            info["error_bound"] = self.error_bound
        else:
            info["rate"] = self.rate
        return info

    # ----------------------------------------------------------- compression

    def compress_bytes(self, data: np.ndarray) -> bytes:
        param = self.error_bound if self.mode == MODE_ABS else float(self.rate)
        header = PayloadHeader(magic=_MAGIC, dtype=data.dtype, count=data.size, param=param)
        mode_code = 0 if self.mode == MODE_ABS else 1
        if data.size == 0:
            return header.pack() + _BODY_HEADER.pack(mode_code, 0, self.block_size, 0)

        block = self.block_size
        n_blocks = (data.size + block - 1) // block
        padded = np.empty(n_blocks * block, dtype=np.float64)
        padded[: data.size] = data
        if padded.size > data.size:
            padded[data.size :] = data[-1]
        coeffs = _haar_forward(padded.reshape(n_blocks, block))

        body = bytearray()
        body += header.pack()
        body += _BODY_HEADER.pack(mode_code, 0, block, n_blocks)
        if self.mode == MODE_ABS:
            body += self._compress_abs(coeffs)
        else:
            body += self._compress_fxr(coeffs)
        return bytes(body)

    def _compress_abs(self, coeffs: np.ndarray) -> bytes:
        step = self.error_bound / _ABS_MARGIN
        quants = np.rint(coeffs / step).astype(np.int64)
        encoded = _zigzag_encode(quants)
        zero_mask = encoded.max(axis=1) == 0

        out = bytearray()
        out += np.packbits(zero_mask.astype(np.uint8)).tobytes()
        nonzero_idx = np.nonzero(~zero_mask)[0]
        meta = bytearray()
        payload = bytearray()
        for idx in nonzero_idx:
            row = encoded[idx]
            nbits_dc = int(row[0]).bit_length()
            nbits_det = int(row[1:].max()).bit_length()
            if max(nbits_dc, nbits_det) > _MAX_QUANT_BITS:
                raise CompressionError(
                    "quantised coefficients exceed the supported width; the error bound "
                    f"({self.error_bound!r}) is too small relative to the data range"
                )
            meta.append(nbits_dc)
            meta.append(nbits_det)
            payload += pack_uint_bits(row[:1], nbits_dc)
            payload += pack_uint_bits(row[1:], nbits_det)
        out += bytes(meta)
        out += bytes(payload)
        return bytes(out)

    def _compress_fxr(self, coeffs: np.ndarray) -> bytes:
        block = self.block_size
        coef_bits = self._coef_bits
        block_bytes = self._block_bytes
        max_abs = np.abs(coeffs).max(axis=1)
        out = bytearray()
        for row, cmax in zip(coeffs, max_abs):
            chunk = bytearray(block_bytes)
            if cmax == 0.0:
                chunk[0] = _FXR_ZERO_EXPONENT & 0xFF
                out += chunk
                continue
            emax = int(math.ceil(math.log2(cmax))) if cmax > 0 else 0
            emax = max(-127, min(127, emax))
            chunk[0] = emax & 0xFF
            # step chosen so the largest coefficient fits in coef_bits signed bits
            step = (2.0 ** emax) / (2 ** (coef_bits - 1) - 1) if coef_bits > 1 else 2.0 ** emax
            q = np.rint(row / step).astype(np.int64)
            limit = 2 ** (coef_bits - 1) - 1 if coef_bits > 1 else 0
            np.clip(q, -limit, limit, out=q)
            packed = pack_uint_bits(_zigzag_encode(q), coef_bits)
            chunk[1 : 1 + len(packed)] = packed
            out += chunk
        return bytes(out)

    # --------------------------------------------------------- decompression

    def decompress_bytes(self, payload: bytes) -> np.ndarray:
        header = PayloadHeader.unpack(payload, _MAGIC)
        offset = PayloadHeader.SIZE
        if len(payload) < offset + _BODY_HEADER.size:
            raise DecompressionError("truncated ZFP payload (missing body header)")
        mode_code, _reserved, block, n_blocks = _BODY_HEADER.unpack_from(payload, offset)
        offset += _BODY_HEADER.size
        if header.count == 0:
            return np.zeros(0, dtype=header.dtype)
        if block <= 0 or n_blocks != (header.count + block - 1) // block:
            raise DecompressionError("inconsistent ZFP block metadata")

        if mode_code == 0:
            coeffs = self._decompress_abs(payload, offset, block, n_blocks, header.param)
        elif mode_code == 1:
            coeffs = self._decompress_fxr(payload, offset, block, n_blocks, header.param)
        else:
            raise DecompressionError(f"unknown ZFP mode code {mode_code}")

        values = _haar_inverse(coeffs).reshape(-1)
        return values[: header.count].astype(header.dtype)

    def _decompress_abs(
        self, payload: bytes, offset: int, block: int, n_blocks: int, error_bound: float
    ) -> np.ndarray:
        step = error_bound / _ABS_MARGIN
        flag_bytes = (n_blocks + 7) // 8
        if len(payload) < offset + flag_bytes:
            raise DecompressionError("truncated ZFP payload (missing zero flags)")
        zero_mask = np.unpackbits(
            np.frombuffer(payload, dtype=np.uint8, count=flag_bytes, offset=offset)
        )[:n_blocks].astype(bool)
        offset += flag_bytes
        nonzero_idx = np.nonzero(~zero_mask)[0]
        n_nonzero = int(nonzero_idx.size)
        if len(payload) < offset + 2 * n_nonzero:
            raise DecompressionError("truncated ZFP payload (missing bit widths)")
        meta = np.frombuffer(payload, dtype=np.uint8, count=2 * n_nonzero, offset=offset)
        offset += 2 * n_nonzero

        coeffs = np.zeros((n_blocks, block), dtype=np.float64)
        cursor = offset
        for pos, idx in enumerate(nonzero_idx):
            nbits_dc = int(meta[2 * pos])
            nbits_det = int(meta[2 * pos + 1])
            dc_bytes = (nbits_dc + 7) // 8
            det_bytes = ((block - 1) * nbits_det + 7) // 8
            piece = payload[cursor : cursor + dc_bytes + det_bytes]
            if len(piece) < dc_bytes + det_bytes:
                raise DecompressionError("truncated ZFP payload (missing block data)")
            cursor += dc_bytes + det_bytes
            dc_q = _zigzag_decode(unpack_uint_bits(piece[:dc_bytes], 1, nbits_dc))
            det_q = _zigzag_decode(
                unpack_uint_bits(piece[dc_bytes:], block - 1, nbits_det)
            )
            coeffs[idx, 0] = float(dc_q[0]) * step
            coeffs[idx, 1:] = det_q.astype(np.float64) * step
        return coeffs

    def _decompress_fxr(
        self, payload: bytes, offset: int, block: int, n_blocks: int, rate: float
    ) -> np.ndarray:
        budget_bits = int(round(rate * block))
        coef_bits = (budget_bits - 8) // block
        block_bytes = (budget_bits + 7) // 8
        if len(payload) < offset + n_blocks * block_bytes:
            raise DecompressionError("truncated ZFP payload (missing fixed-rate blocks)")
        coeffs = np.zeros((n_blocks, block), dtype=np.float64)
        for idx in range(n_blocks):
            chunk = payload[offset + idx * block_bytes : offset + (idx + 1) * block_bytes]
            emax = struct.unpack_from("<b", chunk, 0)[0]
            if emax == _FXR_ZERO_EXPONENT:
                continue
            step = (2.0 ** emax) / (2 ** (coef_bits - 1) - 1) if coef_bits > 1 else 2.0 ** emax
            q = _zigzag_decode(unpack_uint_bits(chunk[1:], block, coef_bits))
            coeffs[idx] = q.astype(np.float64) * step
        return coeffs
