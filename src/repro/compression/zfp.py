"""ZFP-style transform codec with fixed-accuracy (ABS) and fixed-rate (FXR) modes.

The paper uses ZFP 0.5.5 in two modes as baselines:

* **ABS (fixed accuracy)** — the user provides an absolute error bound; the
  compressed size varies with the data.
* **FXR (fixed rate)** — the user provides a rate in bits per value; the
  compressed size is exact and data independent, but the reconstruction error
  is *unbounded* (this is the root of the accuracy problems the paper
  demonstrates for fixed-rate baselines).

This module implements a from-scratch, numpy-only codec with the same two
modes and the same qualitative behaviour.  It is a ZFP-*style* codec, not a
bit-exact reimplementation of ZFP: data is processed in 1-D blocks (16 values),
each block is decorrelated with a multi-level Haar transform (DC + 15 detail
coefficients), and the coefficients are uniformly quantised.

Like the SZx codec, both modes run a width-class batched data plane (see the
"Width-class batched layout" section of :mod:`repro.compression.szx`): ABS
groups the DC and detail fields of non-zero blocks by bit width and encodes
each class with one :func:`~repro.utils.bitpack.pack_uint_bits_rows` pass,
scattering rows at cursors precomputed from the width metadata; FXR — whose
blocks all share one width — is a single batched call.  The emitted bytes are
bit-for-bit those of the historical per-block loop (pinned by
``tests/compression/test_golden_payloads.py``).

* In ABS mode the quantisation step is derived from the error bound with a
  margin that accounts for the inverse-transform error gain, so the point-wise
  reconstruction error stays within the bound; per-block bit widths adapt to
  the data (all-zero blocks cost a single flag bit).
* In FXR mode every block gets exactly ``block_size * rate`` bits (one shared
  block exponent plus equally-sized coefficient fields, padded to the budget),
  which yields an exact compression ratio of ``bits_per_value / rate`` and a
  data-dependent, unbounded error — exactly the trade-off the paper exploits
  when comparing against fixed-rate baselines.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List

import numpy as np

from repro.compression.base import Compressor
from repro.compression.errors import CompressionError, DecompressionError, UnsupportedDataError
from repro.compression.header import PayloadHeader
from repro.utils.bitpack import (
    bit_length_u64,
    narrow_signed_dtype,
    pack_uint_bits_rows,
    pack_width_classes,
    row_nbytes,
    unpack_uint_bits_rows,
    unpack_width_classes,
    zigzag_decode,
    zigzag_encode,
)
from repro.utils.validation import ensure_in, ensure_positive

__all__ = ["ZFPCompressor", "MODE_ABS", "MODE_FXR", "DEFAULT_ZFP_BLOCK"]

_MAGIC = b"ZFP1"
_BODY_HEADER = struct.Struct("<BBHI")  # mode, reserved, block_size, n_blocks

MODE_ABS = "abs"
MODE_FXR = "fxr"
DEFAULT_ZFP_BLOCK = 16

#: inverse Haar error gain: err(value) <= err(DC) + 0.5 * levels * err(detail);
#: with a uniform quantisation step ``s`` this is 1.5 * s for a 16-value block,
#: so a step of ``tol / _ABS_MARGIN`` keeps the point-wise error within ``tol``.
_ABS_MARGIN = 1.7

_MAX_QUANT_BITS = 48
_FXR_ZERO_EXPONENT = -128  # sentinel: the whole block quantises to zero

#: the multi-level Haar transform forms pairwise differences, so inputs past
#: half the float64 range overflow inside the transform
_MAX_TRANSFORM_SAFE = float(np.finfo(np.float64).max) / 2.0


def _haar_forward(blocks: np.ndarray) -> np.ndarray:
    """Multi-level Haar transform of shape ``(n_blocks, block_size)`` blocks.

    Returns coefficients laid out as ``[DC, d_coarsest, ..., d_finest]`` so the
    first column is the block average.
    """
    a = blocks.astype(np.float64)
    details: List[np.ndarray] = []
    while a.shape[1] > 1:
        even = a[:, 0::2]
        odd = a[:, 1::2]
        details.append(odd - even)
        a = (even + odd) * 0.5
    return np.concatenate([a] + details[::-1], axis=1)


def _haar_inverse(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_haar_forward`."""
    n, width = coeffs.shape
    a = coeffs[:, 0:1].astype(np.float64)
    pos = 1
    size = 1
    while pos < width:
        d = coeffs[:, pos : pos + size]
        pos += size
        even = a - d * 0.5
        odd = a + d * 0.5
        merged = np.empty((n, size * 2), dtype=np.float64)
        merged[:, 0::2] = even
        merged[:, 1::2] = odd
        a = merged
        size *= 2
    return a


def _ceil_log2(values: np.ndarray) -> np.ndarray:
    """Vectorised ``math.ceil(math.log2(x))`` for positive floats.

    ``frexp`` gives the exact answer (``x = m * 2**e`` with ``m in [0.5, 1)``
    means ``ceil(log2(x))`` is ``e - 1`` for ``m == 0.5`` and ``e`` otherwise).
    Mantissas within rounding distance of 0.5 are re-evaluated with the scalar
    ``math.log2`` the per-block loop historically used, whose round-to-nearest
    result can land exactly on the lower integer — keeping the emitted
    exponents (and therefore the payload bytes) identical.
    """
    mant, exp = np.frexp(values)
    out = np.where(mant == 0.5, exp - 1, exp).astype(np.int64)
    suspect = (mant > 0.5) & (mant <= 0.5 * (1.0 + 1e-13))
    if suspect.any():
        idx = np.nonzero(suspect)[0]
        for i in idx:
            out[i] = math.ceil(math.log2(float(values[i])))
    return out


class ZFPCompressor(Compressor):
    """ZFP-style codec supporting ``abs`` and ``fxr`` modes.

    Parameters
    ----------
    mode:
        ``"abs"`` for fixed accuracy (requires ``error_bound``) or ``"fxr"``
        for fixed rate (requires ``rate`` in bits per value).
    error_bound:
        Absolute error bound used in ABS mode.
    rate:
        Bits per value in FXR mode (the paper uses 4, 8 and 16).
    block_size:
        Values per block; must be a power of two (default 16).
    """

    error_bounded = False

    def __init__(
        self,
        mode: str = MODE_ABS,
        error_bound: float = 1e-3,
        rate: float = 8.0,
        block_size: int = DEFAULT_ZFP_BLOCK,
    ) -> None:
        self.mode = ensure_in(mode, (MODE_ABS, MODE_FXR), "mode")
        if block_size < 4 or block_size & (block_size - 1):
            raise ValueError(f"block_size must be a power of two >= 4, got {block_size}")
        self.block_size = int(block_size)
        if self.mode == MODE_ABS:
            self.error_bound = ensure_positive(error_bound, "error_bound")
            self.rate = None
            self.error_bounded = True
        else:
            self.rate = ensure_positive(rate, "rate")
            self.error_bound = None
            self.error_bounded = False
            budget_bits = int(round(self.rate * self.block_size))
            if budget_bits < 8 + self.block_size:
                raise ValueError(
                    f"rate {rate} too small for block_size {block_size}: each block needs "
                    f"at least {8 + self.block_size} bits"
                )
            self._budget_bits = budget_bits
            self._coef_bits = (budget_bits - 8) // self.block_size
            if self._coef_bits > 64:
                raise ValueError(
                    f"rate {rate} asks for {self._coef_bits}-bit coefficients; "
                    "the packer supports at most 64"
                )
            self._block_bytes = (budget_bits + 7) // 8

    # ------------------------------------------------------------------ API

    @property
    def name(self) -> str:  # type: ignore[override]
        return "zfp_abs" if self.mode == MODE_ABS else "zfp_fxr"

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "name": self.name,
            "mode": self.mode,
            "block_size": self.block_size,
            "error_bounded": self.error_bounded,
        }
        if self.mode == MODE_ABS:
            info["error_bound"] = self.error_bound
        else:
            info["rate"] = self.rate
        return info

    # ----------------------------------------------------------- compression

    def compress_bytes(self, data: np.ndarray) -> bytes:
        param = self.error_bound if self.mode == MODE_ABS else float(self.rate)
        header = PayloadHeader(magic=_MAGIC, dtype=data.dtype, count=data.size, param=param)
        mode_code = 0 if self.mode == MODE_ABS else 1
        if data.size == 0:
            return header.pack() + _BODY_HEADER.pack(mode_code, 0, self.block_size, 0)

        block = self.block_size
        n_blocks = (data.size + block - 1) // block
        padded = np.empty(n_blocks * block, dtype=np.float64)
        padded[: data.size] = data
        if padded.size > data.size:
            padded[data.size :] = data[-1]
        largest = float(np.max(np.abs(padded)))
        if not math.isfinite(largest):
            raise UnsupportedDataError(
                "non-finite values cannot be encoded; ZFP requires finite input data"
            )
        if largest > _MAX_TRANSFORM_SAFE:
            raise UnsupportedDataError(
                "value magnitudes exceed the Haar-transform-safe range "
                f"(max |value| ~ {largest:.3e} > float64 max / 2)"
            )
        coeffs = _haar_forward(padded.reshape(n_blocks, block))

        body = bytearray()
        body += header.pack()
        body += _BODY_HEADER.pack(mode_code, 0, block, n_blocks)
        if self.mode == MODE_ABS:
            body += self._compress_abs(coeffs)
        else:
            body += self._compress_fxr(coeffs)
        return bytes(body)

    def _compress_abs(self, coeffs: np.ndarray) -> bytes:
        step = self.error_bound / _ABS_MARGIN
        max_abs = float(np.max(np.abs(coeffs))) if coeffs.size else 0.0
        # reject quants beyond int64 before casting: the width check below
        # would catch them anyway, but only after the cast emitted a
        # RuntimeWarning and produced garbage
        quant_bound = 2.0 * (max_abs / step + 1.0) + 1.0
        if not quant_bound < 2.0**63:
            raise CompressionError(
                "quantised coefficients exceed the supported width; the error bound "
                f"({self.error_bound!r}) is too small relative to the data range"
            )
        qdt = narrow_signed_dtype(quant_bound)
        scaled = coeffs / step
        np.rint(scaled, out=scaled)
        encoded = zigzag_encode(scaled.astype(qdt))
        zero_mask = encoded.max(axis=1) == 0

        out = bytearray()
        out += np.packbits(zero_mask.astype(np.uint8)).tobytes()
        nonzero_idx = np.nonzero(~zero_mask)[0]
        if not nonzero_idx.size:
            return bytes(out)
        enc = encoded[nonzero_idx] if nonzero_idx.size != len(encoded) else encoded
        # per-block widths of the DC field (1 value) and the detail field
        # (block-1 values); both are width-class batched below
        nbits_dc = bit_length_u64(enc[:, 0])
        nbits_det = bit_length_u64(enc[:, 1:].max(axis=1))
        if max(int(nbits_dc.max()), int(nbits_det.max())) > _MAX_QUANT_BITS:
            raise CompressionError(
                "quantised coefficients exceed the supported width; the error bound "
                f"({self.error_bound!r}) is too small relative to the data range"
            )
        meta = np.empty((nonzero_idx.size, 2), dtype=np.uint8)
        meta[:, 0] = nbits_dc
        meta[:, 1] = nbits_det
        out += meta.tobytes()
        dc_sizes = row_nbytes(1, nbits_dc)
        det_sizes = row_nbytes(enc.shape[1] - 1, nbits_det)
        piece_sizes = dc_sizes + det_sizes
        piece_starts = np.cumsum(piece_sizes) - piece_sizes
        total = int(piece_sizes.sum())
        region = np.zeros(total, dtype=np.uint8)
        pack_width_classes(enc[:, :1], nbits_dc, piece_starts, total, out=region)
        pack_width_classes(enc[:, 1:], nbits_det, piece_starts + dc_sizes, total, out=region)
        out += region.tobytes()
        return bytes(out)

    def _compress_fxr(self, coeffs: np.ndarray) -> bytes:
        block = self.block_size
        coef_bits = self._coef_bits
        block_bytes = self._block_bytes
        n_blocks = coeffs.shape[0]
        max_abs = np.abs(coeffs).max(axis=1)
        zero_mask = max_abs == 0.0
        nonzero_idx = np.nonzero(~zero_mask)[0]

        chunks = np.zeros((n_blocks, block_bytes), dtype=np.uint8)
        chunks[zero_mask, 0] = _FXR_ZERO_EXPONENT & 0xFF
        if nonzero_idx.size:
            if not np.isfinite(max_abs[nonzero_idx]).all():
                # the scalar loop failed loudly on int(ceil(log2(inf/nan)));
                # keep non-finite input an error, not a corrupt payload
                raise CompressionError(
                    "non-finite values cannot be fixed-rate encoded; ZFP FXR "
                    "requires finite input data"
                )
            emax = np.clip(_ceil_log2(max_abs[nonzero_idx]), -127, 127)
            chunks[nonzero_idx, 0] = (emax & 0xFF).astype(np.uint8)
            # step chosen so the largest coefficient fits in coef_bits signed bits
            denom = float(2 ** (coef_bits - 1) - 1) if coef_bits > 1 else 1.0
            steps = np.ldexp(1.0, emax.astype(np.int32)) / denom
            limit = 2 ** (coef_bits - 1) - 1 if coef_bits > 1 else 0
            scaled = coeffs[nonzero_idx] / steps[:, None]
            np.rint(scaled, out=scaled)
            if coef_bits <= 48 and float(max_abs.max()) < 2.0**127:
                # emax was not clipped, so |scaled| <= limit + rounding and the
                # quants provably fit a narrow dtype; clipping the integral
                # floats first gives the same values the historical int64
                # cast-then-clip produced
                np.clip(scaled, float(-limit), float(limit), out=scaled)
                q = scaled.astype(narrow_signed_dtype(2.0 * limit + 1.0))
            else:
                # Huge rates or emax-saturated magnitudes.  Clip in the float
                # domain first so the int64 cast cannot overflow: the
                # historical cast-then-clip wrapped saturated positives to
                # INT64_MIN and then "clipped" them to -limit, flipping the
                # sign of the reconstructed value.
                fbound = min(float(limit), 2.0**62)
                np.clip(scaled, -fbound, fbound, out=scaled)
                q = scaled.astype(np.int64)
                np.clip(q, -limit, limit, out=q)
            blob = pack_uint_bits_rows(zigzag_encode(q), coef_bits)
            per_row = int(row_nbytes(block, coef_bits))
            packed = np.frombuffer(blob, dtype=np.uint8).reshape(nonzero_idx.size, per_row)
            chunks[nonzero_idx, 1 : 1 + per_row] = packed
        return chunks.tobytes()

    # --------------------------------------------------------- decompression

    def decompress_bytes(self, payload: bytes) -> np.ndarray:
        header = PayloadHeader.unpack(payload, _MAGIC)
        offset = PayloadHeader.SIZE
        if len(payload) < offset + _BODY_HEADER.size:
            raise DecompressionError("truncated ZFP payload (missing body header)")
        mode_code, _reserved, block, n_blocks = _BODY_HEADER.unpack_from(payload, offset)
        offset += _BODY_HEADER.size
        if header.count == 0:
            return np.zeros(0, dtype=header.dtype)
        if block <= 0 or n_blocks != (header.count + block - 1) // block:
            raise DecompressionError("inconsistent ZFP block metadata")

        if mode_code == 0:
            coeffs = self._decompress_abs(payload, offset, block, n_blocks, header.param)
        elif mode_code == 1:
            coeffs = self._decompress_fxr(payload, offset, block, n_blocks, header.param)
        else:
            raise DecompressionError(f"unknown ZFP mode code {mode_code}")

        values = _haar_inverse(coeffs).reshape(-1)
        return values[: header.count].astype(header.dtype)

    def _decompress_abs(
        self, payload: bytes, offset: int, block: int, n_blocks: int, error_bound: float
    ) -> np.ndarray:
        step = error_bound / _ABS_MARGIN
        flag_bytes = (n_blocks + 7) // 8
        if len(payload) < offset + flag_bytes:
            raise DecompressionError("truncated ZFP payload (missing zero flags)")
        zero_mask = np.unpackbits(
            np.frombuffer(payload, dtype=np.uint8, count=flag_bytes, offset=offset)
        )[:n_blocks].astype(bool)
        offset += flag_bytes
        nonzero_idx = np.nonzero(~zero_mask)[0]
        n_nonzero = int(nonzero_idx.size)
        if len(payload) < offset + 2 * n_nonzero:
            raise DecompressionError("truncated ZFP payload (missing bit widths)")
        meta = np.frombuffer(payload, dtype=np.uint8, count=2 * n_nonzero, offset=offset)
        offset += 2 * n_nonzero

        coeffs = np.zeros((n_blocks, block), dtype=np.float64)
        if not n_nonzero:
            return coeffs
        nbits_dc = meta[0::2].astype(np.int64)
        nbits_det = meta[1::2].astype(np.int64)
        dc_sizes = row_nbytes(1, nbits_dc)
        det_sizes = row_nbytes(block - 1, nbits_det)
        piece_sizes = dc_sizes + det_sizes
        piece_starts = np.cumsum(piece_sizes) - piece_sizes
        total = int(piece_sizes.sum())
        if len(payload) < offset + total:
            raise DecompressionError("truncated ZFP payload (missing block data)")
        region = np.frombuffer(payload, dtype=np.uint8, count=total, offset=offset)
        dc_q = zigzag_decode(unpack_width_classes(region, nbits_dc, piece_starts, 1, dtype=None))
        det_q = zigzag_decode(
            unpack_width_classes(region, nbits_det, piece_starts + dc_sizes, block - 1, dtype=None)
        )
        coeffs[nonzero_idx, 0] = dc_q[:, 0].astype(np.float64) * step
        coeffs[nonzero_idx, 1:] = det_q.astype(np.float64) * step
        return coeffs

    def _decompress_fxr(
        self, payload: bytes, offset: int, block: int, n_blocks: int, rate: float
    ) -> np.ndarray:
        budget_bits = int(round(rate * block))
        coef_bits = (budget_bits - 8) // block
        block_bytes = (budget_bits + 7) // 8
        if len(payload) < offset + n_blocks * block_bytes:
            raise DecompressionError("truncated ZFP payload (missing fixed-rate blocks)")
        chunks = np.frombuffer(
            payload, dtype=np.uint8, count=n_blocks * block_bytes, offset=offset
        ).reshape(n_blocks, block_bytes)
        emax = chunks[:, 0].view(np.int8).astype(np.int64)
        nonzero_idx = np.nonzero(emax != _FXR_ZERO_EXPONENT)[0]
        coeffs = np.zeros((n_blocks, block), dtype=np.float64)
        if not nonzero_idx.size:
            return coeffs
        denom = float(2 ** (coef_bits - 1) - 1) if coef_bits > 1 else 1.0
        steps = np.ldexp(1.0, emax[nonzero_idx].astype(np.int32)) / denom
        per_row = int(row_nbytes(block, coef_bits))
        body = np.ascontiguousarray(chunks[nonzero_idx, 1 : 1 + per_row])
        q = zigzag_decode(
            unpack_uint_bits_rows(body, nonzero_idx.size, block, coef_bits, dtype=None)
        )
        coeffs[nonzero_idx] = q.astype(np.float64) * steps[:, None]
        return coeffs
