"""Compressor interface shared by every codec in the reproduction.

Every compressor turns a flat float array into a *self-describing* byte string
(so that the byte string can travel through the simulated MPI network with no
side-band metadata) and back.  The :class:`CompressedBuffer` wrapper carries
the byte payload together with bookkeeping used by the harness (original size,
ratio, the codec that produced it).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.compression.errors import UnsupportedDataError
from repro.metrics.ratios import compression_ratio
from repro.utils.validation import ensure_1d_float_array

__all__ = ["CompressedBuffer", "Compressor", "check_compressible"]


@dataclass(frozen=True)
class CompressedBuffer:
    """A compressed representation of a flat float array.

    Attributes
    ----------
    payload:
        Self-describing byte string (header + body) produced by a compressor.
    original_count:
        Number of elements in the original array.
    original_dtype:
        Dtype of the original array (restored on decompression).
    codec:
        Name of the codec that produced the payload.
    meta:
        Optional codec-specific metadata (for diagnostics only; decompression
        must never need it, the payload is self-describing).
    """

    payload: bytes
    original_count: int
    original_dtype: np.dtype
    codec: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Size of the compressed payload in bytes."""
        return len(self.payload)

    @property
    def original_nbytes(self) -> int:
        """Size of the original (uncompressed) data in bytes."""
        return int(self.original_count) * np.dtype(self.original_dtype).itemsize

    @property
    def ratio(self) -> float:
        """Compression ratio (original bytes / compressed bytes)."""
        return compression_ratio(self.original_nbytes, self.nbytes)


def check_compressible(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Validate that ``data`` is a finite 1-D float array and return it.

    The codecs in this library target scientific floating-point fields; NaN and
    Inf values are rejected up front so that the error-bound guarantee is
    meaningful.
    """
    arr = ensure_1d_float_array(data, name)
    if arr.size and not np.all(np.isfinite(arr)):
        raise UnsupportedDataError(f"{name} contains NaN or Inf values")
    return arr


class Compressor(abc.ABC):
    """Abstract base class for all codecs.

    Subclasses implement :meth:`compress_bytes` / :meth:`decompress_bytes` on
    self-describing byte strings; the public :meth:`compress` /
    :meth:`decompress` wrappers add validation and the
    :class:`CompressedBuffer` bookkeeping.
    """

    #: short identifier used by the registry and in harness tables
    name: str = "base"
    #: True when the codec honours a user-specified absolute error bound
    error_bounded: bool = False

    @abc.abstractmethod
    def compress_bytes(self, data: np.ndarray) -> bytes:
        """Compress a validated 1-D float array into a self-describing payload."""

    @abc.abstractmethod
    def decompress_bytes(self, payload: bytes) -> np.ndarray:
        """Reconstruct the array from a payload produced by :meth:`compress_bytes`."""

    def compress(self, data) -> CompressedBuffer:
        """Validate ``data`` and compress it, returning a :class:`CompressedBuffer`."""
        arr = check_compressible(data)
        payload = self.compress_bytes(arr)
        return CompressedBuffer(
            payload=payload,
            original_count=arr.size,
            original_dtype=arr.dtype,
            codec=self.name,
        )

    def decompress(self, compressed) -> np.ndarray:
        """Decompress either a :class:`CompressedBuffer` or a raw payload."""
        payload = compressed.payload if isinstance(compressed, CompressedBuffer) else compressed
        return self.decompress_bytes(bytes(payload))

    def roundtrip(self, data) -> np.ndarray:
        """Convenience: compress then decompress (used heavily in tests)."""
        return self.decompress(self.compress(data))

    # -- introspection ------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Return a dictionary describing the codec configuration."""
        return {"name": self.name, "error_bounded": self.error_bounded}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self.describe().items() if k != "name")
        return f"{type(self).__name__}({params})"
