"""Codec registry and factory.

The experiment harness, the C-Coll configuration layer, and the command-line
examples all refer to codecs by name ("szx", "zfp_abs", "zfp_fxr", ...); this
module maps those names to constructor calls with the right keyword arguments.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.compression.base import Compressor
from repro.compression.null import NullCompressor
from repro.compression.pipelined import PipelinedSZx
from repro.compression.szx import SZxCompressor
from repro.compression.zfp import MODE_ABS, MODE_FXR, ZFPCompressor

__all__ = ["make_compressor", "available_compressors", "register_compressor"]

_FACTORIES: Dict[str, Callable[..., Compressor]] = {}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a codec factory under ``name`` (overwrites an existing entry)."""
    _FACTORIES[name.lower()] = factory


def available_compressors() -> list:
    """Names of all registered codecs, sorted."""
    return sorted(_FACTORIES)


def make_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a codec by name.

    Supported names (and their keyword arguments):

    * ``"szx"`` — ``error_bound``, ``block_size``, ``error_mode``
    * ``"pipe_szx"`` — ``error_bound``, ``chunk_elems``, ``block_size``
    * ``"zfp_abs"`` — ``error_bound``, ``block_size``
    * ``"zfp_fxr"`` — ``rate``, ``block_size``
    * ``"null"`` — no arguments
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown compressor {name!r}; available: {', '.join(available_compressors())}"
        )
    return _FACTORIES[key](**kwargs)


register_compressor("szx", SZxCompressor)
register_compressor("pipe_szx", PipelinedSZx)
register_compressor("zfp_abs", lambda **kw: ZFPCompressor(mode=MODE_ABS, **kw))
register_compressor("zfp_fxr", lambda **kw: ZFPCompressor(mode=MODE_FXR, **kw))
register_compressor("null", NullCompressor)
