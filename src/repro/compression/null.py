"""Identity (no-op) codec.

The uncompressed MPI baselines and several tests need a codec-shaped object
that does not modify the data; :class:`NullCompressor` serialises the array
as-is (plus the standard self-describing header) so it can flow through the
same code paths as the real codecs.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor
from repro.compression.errors import DecompressionError
from repro.compression.header import PayloadHeader

__all__ = ["NullCompressor"]

_MAGIC = b"RAW1"


class NullCompressor(Compressor):
    """Codec that stores the raw bytes of the array (compression ratio ~1)."""

    name = "null"
    error_bounded = True  # trivially: the error is exactly zero

    def compress_bytes(self, data: np.ndarray) -> bytes:
        header = PayloadHeader(magic=_MAGIC, dtype=data.dtype, count=data.size, param=0.0)
        return header.pack() + data.tobytes()

    def decompress_bytes(self, payload: bytes) -> np.ndarray:
        header = PayloadHeader.unpack(payload, _MAGIC)
        body = payload[PayloadHeader.SIZE :]
        expected = header.count * np.dtype(header.dtype).itemsize
        if len(body) < expected:
            raise DecompressionError(
                f"truncated raw payload: expected {expected} bytes, got {len(body)}"
            )
        return np.frombuffer(body[:expected], dtype=header.dtype).copy()
