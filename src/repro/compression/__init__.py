"""Error-bounded lossy compressors used by the C-Coll reproduction.

The package provides from-scratch numpy implementations of the codecs the
paper builds on:

* :class:`~repro.compression.szx.SZxCompressor` — SZx-style ultra-fast
  error-bounded block compressor (the codec C-Coll customises);
* :class:`~repro.compression.pipelined.PipelinedSZx` — PIPE-SZx, the chunked
  variant with a front-of-buffer size index that lets collectives overlap
  compression with communication progress;
* :class:`~repro.compression.zfp.ZFPCompressor` — ZFP-style transform codec
  with fixed-accuracy (ABS) and fixed-rate (FXR) modes, used as baselines;
* :class:`~repro.compression.null.NullCompressor` — identity codec for the
  uncompressed baselines.
"""

from repro.compression.base import CompressedBuffer, Compressor, check_compressible
from repro.compression.errors import CompressionError, DecompressionError, UnsupportedDataError
from repro.compression.null import NullCompressor
from repro.compression.pipelined import DEFAULT_CHUNK_ELEMS, CompressedChunk, PipelinedSZx
from repro.compression.registry import available_compressors, make_compressor, register_compressor
from repro.compression.szx import DEFAULT_BLOCK_SIZE, SZxCompressor
from repro.compression.zfp import MODE_ABS, MODE_FXR, ZFPCompressor

__all__ = [
    "Compressor",
    "CompressedBuffer",
    "check_compressible",
    "CompressionError",
    "DecompressionError",
    "UnsupportedDataError",
    "SZxCompressor",
    "PipelinedSZx",
    "CompressedChunk",
    "ZFPCompressor",
    "NullCompressor",
    "make_compressor",
    "available_compressors",
    "register_compressor",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CHUNK_ELEMS",
    "MODE_ABS",
    "MODE_FXR",
]
