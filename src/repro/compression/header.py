"""Binary header encoding shared by the codecs.

Every codec payload starts with a small fixed header identifying the codec, the
original dtype, and the element count, so that payloads are fully
self-describing (needed because compressed chunks travel through the simulated
network as opaque byte strings).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.compression.errors import DecompressionError

__all__ = ["PayloadHeader", "DTYPE_CODES", "CODE_DTYPES"]

#: mapping numpy dtype -> 1-byte code stored in the header
DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
CODE_DTYPES = {code: dtype for dtype, code in DTYPE_CODES.items()}

_STRUCT = struct.Struct("<4sBBQd")


@dataclass(frozen=True)
class PayloadHeader:
    """Fixed-size header at the front of every compressed payload."""

    magic: bytes
    dtype: np.dtype
    count: int
    param: float  # error bound (ABS codecs) or rate (FXR codecs); 0.0 if unused
    version: int = 1

    SIZE = _STRUCT.size

    def pack(self) -> bytes:
        """Serialise the header to its fixed-size binary form."""
        if len(self.magic) != 4:
            raise ValueError("magic must be exactly 4 bytes")
        return _STRUCT.pack(
            self.magic, self.version, DTYPE_CODES[np.dtype(self.dtype)], self.count, self.param
        )

    @classmethod
    def unpack(cls, payload: bytes, expected_magic: bytes) -> "PayloadHeader":
        """Parse and validate a header from the front of ``payload``."""
        if len(payload) < cls.SIZE:
            raise DecompressionError(
                f"payload too small for header ({len(payload)} < {cls.SIZE} bytes)"
            )
        magic, version, dtype_code, count, param = _STRUCT.unpack_from(payload, 0)
        if magic != expected_magic:
            raise DecompressionError(
                f"bad magic {magic!r}: payload was not produced by this codec "
                f"(expected {expected_magic!r})"
            )
        if dtype_code not in CODE_DTYPES:
            raise DecompressionError(f"unknown dtype code {dtype_code}")
        return cls(
            magic=magic,
            dtype=CODE_DTYPES[dtype_code],
            count=count,
            param=param,
            version=version,
        )
