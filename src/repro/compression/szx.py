"""SZx-style ultra-fast error-bounded lossy compressor.

This is a from-scratch numpy implementation of the algorithmic core of SZx
(Yu et al., HPDC'22), the compressor the paper customises for MPI collectives:

* the input is split into fixed-size blocks (128 values by default);
* each block stores its *medium value* ``(min + max) / 2``;
* a block whose radius ``(max - min) / 2`` is within the error bound is a
  **constant block** — only the medium value is stored (this is where the very
  high ratios on smooth scientific fields come from);
* a **non-constant block** additionally stores, for every value, the offset
  from the medium value quantised with step ``2 * error_bound`` and packed with
  the minimum number of bits required by the largest offset in the block.

The reconstruction error of every value is therefore bounded by the absolute
error bound (up to floating-point rounding when the caller's dtype is
float32).  The payload layout is self-describing::

    PayloadHeader  (magic b"SZX1", dtype, count, error_bound)
    u32  block_size
    u32  n_blocks
    u8   flags[ceil(n_blocks / 8)]      1 bit per block, 1 = constant
    f32  medium[n_blocks]
    u8   nbits[n_nonconstant]
    u8   payload[...]                   per non-constant block, byte aligned

The compressed size of each block is computable from the metadata alone, which
is what allows the pipelined variant (:mod:`repro.compression.pipelined`) to
keep a compact chunk index at the front of its buffer.

Width-class batched layout
--------------------------
The per-block payload region is written and read **by width class** rather
than block by block.  All non-constant blocks sharing the same bit width
``w`` form one class; the whole class is encoded in a single
:func:`~repro.utils.bitpack.pack_uint_bits_rows` call (one numpy pass over an
``(n_class, block)`` matrix, each row padded to a whole byte) and the
resulting rows are scattered into the payload at cursors precomputed from the
``nbits`` metadata (``cumsum`` of the per-block byte sizes).  Decompression
mirrors this: cursors are precomputed the same way, each class's rows are
gathered with one fancy-index and decoded with one
:func:`~repro.utils.bitpack.unpack_uint_bits_rows` call.  Because every row
is byte-aligned exactly like an independent ``pack_uint_bits`` call, the
on-wire bytes are bit-for-bit identical to the historical per-block loop —
pinned by ``tests/compression/test_golden_payloads.py`` — while the hot path
runs a constant number of numpy passes per *distinct width* instead of a
Python iteration per *block*.
"""

from __future__ import annotations

import math
import struct
from typing import Dict

import numpy as np

from repro.compression.base import Compressor
from repro.compression.errors import CompressionError, DecompressionError, UnsupportedDataError
from repro.compression.header import PayloadHeader
from repro.utils.bitpack import (
    bit_length_u64,
    narrow_signed_dtype,
    pack_width_classes,
    row_nbytes,
    unpack_width_classes,
    zigzag_decode,
    zigzag_encode,
)
from repro.utils.validation import ensure_in, ensure_positive

__all__ = ["SZxCompressor", "DEFAULT_BLOCK_SIZE"]

_MAGIC = b"SZX1"
_BLOCK_HEADER = struct.Struct("<II")
DEFAULT_BLOCK_SIZE = 128

#: offsets larger than this many quantisation bins fall back to raw storage;
#: it guards the bit-length computation against degenerate bound/data combos.
_MAX_QUANT_BITS = 48


class SZxCompressor(Compressor):
    """Error-bounded SZx-style block compressor.

    Parameters
    ----------
    error_bound:
        Absolute error bound (``error_mode="abs"``) or relative bound as a
        fraction of the buffer value range (``error_mode="rel"``).
    block_size:
        Number of values per block (SZx uses 128 on CPUs).
    error_mode:
        ``"abs"`` (the mode used throughout the paper) or ``"rel"``.
    """

    name = "szx"
    error_bounded = True

    def __init__(
        self,
        error_bound: float = 1e-3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        error_mode: str = "abs",
    ) -> None:
        self.error_bound = ensure_positive(error_bound, "error_bound")
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        self.block_size = int(block_size)
        self.error_mode = ensure_in(error_mode, ("abs", "rel"), "error_mode")

    # ------------------------------------------------------------------ API

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "error_bounded": True,
            "error_bound": self.error_bound,
            "error_mode": self.error_mode,
            "block_size": self.block_size,
        }

    def effective_error_bound(self, data: np.ndarray) -> float:
        """Absolute error bound applied to ``data`` (resolves the ``rel`` mode)."""
        if self.error_mode == "abs":
            return self.error_bound
        if data.size == 0:
            return self.error_bound
        # subtract in python floats: numpy scalar arithmetic would emit a
        # RuntimeWarning when the range overflows, the guard below rejects it
        value_range = float(np.max(data)) - float(np.min(data))
        if not math.isfinite(value_range):
            raise UnsupportedDataError(
                "value range overflows float64; relative-bound SZx cannot "
                "resolve an absolute error bound for this data"
            )
        if value_range == 0.0:
            value_range = 1.0
        # a denormal value range can underflow the product to zero; clamp to
        # the smallest normal float so the quantiser's step stays finite (the
        # clamped bound exceeds the range, so every block is constant and the
        # reconstruction is trivially within bound)
        return max(self.error_bound * value_range, float(np.finfo(np.float64).tiny))

    # ----------------------------------------------------------- compression

    def compress_bytes(self, data: np.ndarray) -> bytes:
        eb = self.effective_error_bound(data)
        if not (eb > 0.0 and math.isfinite(eb)):
            raise CompressionError(
                f"resolved error bound {eb!r} is not a positive finite number "
                "(a relative bound underflowed on this data's value range)"
            )
        header = PayloadHeader(magic=_MAGIC, dtype=data.dtype, count=data.size, param=eb)
        if data.size == 0:
            return header.pack() + _BLOCK_HEADER.pack(self.block_size, 0)

        block = self.block_size
        n_blocks = (data.size + block - 1) // block
        padded = np.empty(n_blocks * block, dtype=np.float64)
        padded[: data.size] = data
        if padded.size > data.size:
            padded[data.size :] = data[-1]
        blocks = padded.reshape(n_blocks, block)

        mins = blocks.min(axis=1)
        maxs = blocks.max(axis=1)
        # The payload stores block anchors as float32; values beyond its range
        # would overflow the cast (and the float64 midpoint sum) mid-pack.
        largest = max(-float(mins.min()), float(maxs.max()), 0.0)
        if largest > float(np.finfo(np.float32).max):
            raise UnsupportedDataError(
                "value magnitudes exceed the float32 anchor range of the SZx "
                f"payload format (max |value| ~ {largest:.3e})"
            )
        medium = ((mins + maxs) * 0.5).astype(np.float32)
        # Classify blocks against the float32 medium actually stored in the
        # payload, so the error bound holds for the reconstructed values too.
        offsets_all = blocks - medium.astype(np.float64)[:, None]
        # max(|row|) <= eb  <=>  row_max <= eb and row_min >= -eb (no abs pass)
        row_max = offsets_all.max(axis=1)
        row_min = offsets_all.min(axis=1)
        const_mask = (row_max <= eb) & (row_min >= -eb)

        # Quantise offsets from the (float32-rounded) medium value for all
        # non-constant blocks at once; the step of 2*eb keeps |error| <= eb.
        nonconst_idx = np.nonzero(~const_mask)[0]
        step = 2.0 * eb
        nbits_arr = np.zeros(0, dtype=np.int64)
        data_region = b""
        if nonconst_idx.size:
            if nonconst_idx.size == n_blocks:
                offsets = offsets_all  # every block non-constant: mutate in place
                max_abs = max(float(row_max.max()), -float(row_min.min()))
            else:
                offsets = offsets_all[nonconst_idx]
                max_abs = max(
                    float(row_max[nonconst_idx].max()),
                    -float(row_min[nonconst_idx].min()),
                )
            # zigzag magnitude of a quant q is <= 2*|q| + 1; the division
            # bound (plus rounding margin) picks the narrowest safe dtype.
            # Reject quants beyond int64 before casting (the width check
            # below would catch them anyway, but only after the cast emitted
            # a RuntimeWarning and produced garbage)
            quant_bound = 2.0 * (max_abs / step + 1.0) + 1.0
            if not quant_bound < 2.0**63:
                raise CompressionError(
                    "quantised offsets exceed the supported width; the error bound "
                    f"({eb!r}) is too small relative to the data range"
                )
            np.divide(offsets, step, out=offsets)
            np.rint(offsets, out=offsets)
            quants = offsets.astype(narrow_signed_dtype(quant_bound))
            encoded = zigzag_encode(quants)
            nbits_arr = bit_length_u64(encoded.max(axis=1))
            if int(nbits_arr.max()) > _MAX_QUANT_BITS:
                raise CompressionError(
                    "quantised offsets exceed the supported width; the error bound "
                    f"({eb!r}) is too small relative to the data range"
                )
            sizes = row_nbytes(block, nbits_arr)
            starts = np.cumsum(sizes) - sizes
            data_region = pack_width_classes(encoded, nbits_arr, starts, int(sizes.sum()))

        flags = np.packbits(const_mask.astype(np.uint8)).tobytes()
        out = bytearray()
        out += header.pack()
        out += _BLOCK_HEADER.pack(block, n_blocks)
        out += flags
        out += medium.tobytes()
        out += nbits_arr.astype(np.uint8).tobytes()
        out += data_region
        return bytes(out)

    # --------------------------------------------------------- decompression

    def decompress_bytes(self, payload: bytes) -> np.ndarray:
        header = PayloadHeader.unpack(payload, _MAGIC)
        offset = PayloadHeader.SIZE
        if len(payload) < offset + _BLOCK_HEADER.size:
            raise DecompressionError("truncated SZx payload (missing block header)")
        block, n_blocks = _BLOCK_HEADER.unpack_from(payload, offset)
        offset += _BLOCK_HEADER.size
        if header.count == 0:
            return np.zeros(0, dtype=header.dtype)
        if block <= 0 or n_blocks != (header.count + block - 1) // block:
            raise DecompressionError("inconsistent SZx block metadata")

        flag_bytes = (n_blocks + 7) // 8
        end_flags = offset + flag_bytes
        end_medium = end_flags + 4 * n_blocks
        if len(payload) < end_medium:
            raise DecompressionError("truncated SZx payload (missing block metadata)")
        const_mask = np.unpackbits(
            np.frombuffer(payload, dtype=np.uint8, count=flag_bytes, offset=offset)
        )[:n_blocks].astype(bool)
        medium = np.frombuffer(payload, dtype=np.float32, count=n_blocks, offset=end_flags)

        nonconst_idx = np.nonzero(~const_mask)[0]
        n_nonconst = int(nonconst_idx.size)
        end_nbits = end_medium + n_nonconst
        if len(payload) < end_nbits:
            raise DecompressionError("truncated SZx payload (missing bit widths)")
        nbits_arr = np.frombuffer(
            payload, dtype=np.uint8, count=n_nonconst, offset=end_medium
        ).astype(np.int64)

        eb = header.param
        step = 2.0 * eb
        out = np.empty(n_blocks * block, dtype=np.float64)
        out_blocks = out.reshape(n_blocks, block)
        # Constant blocks: every value is the stored medium.
        out_blocks[const_mask] = medium[const_mask].astype(np.float64)[:, None]

        if n_nonconst:
            sizes = row_nbytes(block, nbits_arr)
            starts = np.cumsum(sizes) - sizes
            total = int(sizes.sum())
            if len(payload) < end_nbits + total:
                raise DecompressionError("truncated SZx payload (missing block data)")
            region = np.frombuffer(payload, dtype=np.uint8, count=total, offset=end_nbits)
            # decode in the narrowest dtype the widest class needs, zigzag
            # branchlessly in that width, and only then widen to float64
            encoded = unpack_width_classes(region, nbits_arr, starts, block, dtype=None)
            quants = zigzag_decode(encoded).astype(np.float64)
            quants *= step
            quants += medium[nonconst_idx].astype(np.float64)[:, None]
            out_blocks[nonconst_idx] = quants

        return out[: header.count].astype(header.dtype)
