"""Exceptions raised by the compression subsystem."""

from __future__ import annotations

__all__ = ["CompressionError", "DecompressionError", "UnsupportedDataError"]


class CompressionError(RuntimeError):
    """Raised when a buffer cannot be compressed (bad parameters, bad data)."""


class DecompressionError(RuntimeError):
    """Raised when a compressed buffer is malformed or truncated."""


class UnsupportedDataError(CompressionError):
    """Raised when the input data cannot be handled (NaN/Inf, wrong dtype)."""
