"""Scenario fuzzer with an invariant autopilot.

Four modules with one job each (see ``README.md`` in this package):

* :mod:`~repro.fuzzer.generator` — seed -> :class:`Scenario` across the full
  fabric x placement x contention x codec x algorithm x payload cross-product.
* :mod:`~repro.fuzzer.executor` — scenario -> run record, every applicable
  invariant checked (values, capacity, fair share, determinism, codec
  round-trip).
* :mod:`~repro.fuzzer.autopilot` — time-boxed sweeps + deterministic
  shrinking of failures to minimal reproducers.
* :mod:`~repro.fuzzer.database` — append-only JSONL keyed by replayable run
  ids (``python -m repro.fuzzer replay <run_id>``).
"""

from repro.fuzzer.autopilot import SweepReport, shrink, sweep
from repro.fuzzer.database import ResultsDatabase
from repro.fuzzer.executor import build_communicator, execute, make_inputs, run_id_for
from repro.fuzzer.generator import Scenario, generate_scenario, sanitize

__all__ = [
    "Scenario",
    "generate_scenario",
    "sanitize",
    "execute",
    "build_communicator",
    "make_inputs",
    "run_id_for",
    "sweep",
    "shrink",
    "SweepReport",
    "ResultsDatabase",
]
