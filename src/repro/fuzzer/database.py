"""JSONL results database keyed by replayable run ids.

One record per line, append-only; the latest record for a run id wins (the
autopilot may re-execute a scenario while shrinking).  The format is the
executor's record dict verbatim, so ``replay`` can rebuild the exact scenario
from the stored ``scenario`` field and compare ``makespan`` /
``value_digest`` bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["ResultsDatabase"]


class ResultsDatabase:
    """Append-only JSONL store of fuzzer run records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ---------------------------------------------------------------- writing

    def append(self, record: Dict[str, object]) -> None:
        """Append one executor record (must carry a ``run_id``)."""
        if "run_id" not in record:
            raise ValueError("record has no run_id")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    # ---------------------------------------------------------------- reading

    def __iter__(self) -> Iterator[Dict[str, object]]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def records(self) -> List[Dict[str, object]]:
        """Every stored record, in append order."""
        return list(self)

    def get(self, run_id: str) -> Optional[Dict[str, object]]:
        """The latest record stored under ``run_id`` (None if absent)."""
        found: Optional[Dict[str, object]] = None
        for record in self:
            if record.get("run_id") == run_id:
                found = record
        return found

    def summary(self) -> Dict[str, int]:
        """Counts by status (latest record per run id)."""
        latest: Dict[str, str] = {}
        for record in self:
            latest[str(record.get("run_id"))] = str(record.get("status"))
        counts: Dict[str, int] = {}
        for status in latest.values():
            counts[status] = counts.get(status, 0) + 1
        counts["total"] = len(latest)
        return counts
