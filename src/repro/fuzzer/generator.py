"""Deterministic scenario generation for the invariant fuzzer.

A :class:`Scenario` is a fully explicit, JSON-serialisable description of one
simulated collective: the fabric (preset, placement pattern, rails, routing,
contention discipline), the collective (operation, algorithm, compression
route, codec, error bound) and the payload (element count, dtype, data
profile).  :func:`generate_scenario` expands an integer seed into one point of
that cross-product with :class:`random.Random` — the same seed always yields
the same scenario, and because the scenario records every resolved dimension
it replays exactly from its dict alone, without the seed.

Raw draws can land on combinations the session API rejects by design
(``compression="nd"`` outside allreduce, an explicit algorithm on a
compressed allreduce, placement patterns on the flat fabric).
:func:`sanitize` folds every such draw onto the nearest valid scenario, so
the generator's output space is exactly the valid input space — the executor
never has to distinguish "the generator built nonsense" from "the simulator
broke".
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Scenario",
    "generate_scenario",
    "sanitize",
    "placement_list",
    "PRESETS",
    "PLACEMENT_PATTERNS",
    "OPS",
    "CODECS",
    "MESSAGE_ELEMS",
    "HARNESS_EXPERIMENTS",
    "FAULT_MIXES",
]

#: topology presets the fuzzer sweeps (keys of ``TOPOLOGY_PRESETS``)
PRESETS: Tuple[str, ...] = (
    "flat",
    "two_level",
    "shared_uplink",
    "fat_tree",
    "dragonfly",
    "rail_fat_tree",
)

#: placed presets where a rank->node map applies at all
_PLACED_PRESETS = ("two_level", "shared_uplink", "fat_tree", "dragonfly", "rail_fat_tree")

#: fixed-size fabrics whose placement indexes real host slots
_FABRIC_PRESETS = ("fat_tree", "dragonfly", "rail_fat_tree")

#: presets with shared stages (contention discipline applies)
_CONTENDED_PRESETS = ("shared_uplink", "fat_tree", "dragonfly", "rail_fat_tree")

PLACEMENT_PATTERNS: Tuple[str, ...] = ("block", "cyclic", "irregular")

OPS: Tuple[str, ...] = ("allreduce", "allgather", "bcast", "reduce_scatter")

ALGORITHMS: Tuple[str, ...] = (
    "auto",
    "ring",
    "recursive_doubling",
    "rabenseifner",
    "hierarchical",
)

COMPRESSIONS: Tuple[str, ...] = ("off", "on", "di", "nd", "auto")

CODECS: Tuple[str, ...] = ("szx", "pipe_szx", "zfp_abs", "zfp_fxr")

ERROR_BOUNDS: Tuple[float, ...] = (1e-2, 1e-3, 1e-4)

#: element counts: 0/1-element degenerate payloads, non-powers of two, the
#: SZx block boundary (128) and the PIPE-SZx chunk boundary (5120) straddled
MESSAGE_ELEMS: Tuple[int, ...] = (0, 1, 2, 3, 5, 127, 128, 129, 1000, 1024, 4097, 5121)

DATA_PROFILES: Tuple[str, ...] = ("gaussian", "ramp", "constant", "zeros", "mixed_scale")

DTYPES: Tuple[str, ...] = ("float64", "float32")

#: harness experiment presets the fuzzer can run whole (scale="small"):
#: "none" keeps the scenario a plain collective run
HARNESS_EXPERIMENTS: Tuple[str, ...] = (
    "none",
    "topo",
    "fabric",
    "multitenant",
    "faults",
)

#: named fault mixes a scenario can inject into a small workload run
#: (subset of :data:`repro.faults.FAULT_MIXES` that applies to the fuzzed
#: fabrics; rail_outage is forced onto a dual-rail fabric by sanitize)
FAULT_MIXES: Tuple[str, ...] = (
    "none",
    "degraded_tier",
    "flaky_links",
    "stragglers",
    "rail_outage",
    "node_loss",
    "mixed",
    "domain_outage",
)

#: the ``fault_mix`` draw tuple, FROZEN at its pre-domain_outage contents:
#: extending the live draw would re-map every historical seed's scenario.
#: domain_outage enters via the trailing ``domain_outage`` knob instead.
_FAULT_MIX_DRAW: Tuple[str, ...] = ("none",) * 34 + (
    "degraded_tier",
    "flaky_links",
    "stragglers",
    "rail_outage",
    "node_loss",
    "mixed",
)

#: fault mixes that actually lose nodes (the recovery knobs only bite here;
#: sanitize folds them to their defaults everywhere else)
_NODE_LOSS_MIXES: Tuple[str, ...] = ("node_loss", "domain_outage")

#: both fixed-size fabric presets expose 16 host slots at their default
#: arity (fat tree k=4 -> 16 hosts; dragonfly 4x4x1 -> 16 hosts)
_FABRIC_HOSTS = 16


@dataclass(frozen=True)
class Scenario:
    """One fully resolved fuzzer scenario (every field JSON-primitive)."""

    seed: int
    preset: str
    n_ranks: int
    ranks_per_node: int
    placement: str
    nics_per_node: int
    routing: str
    contention: str
    op: str
    algorithm: str
    compression: str
    codec: str
    error_bound: float
    msg_elems: int
    dtype: str
    data_profile: str
    #: back-to-back collective steps per run (same op, fresh per-step inputs);
    #: declared last so seeds from before the knob expand to the same scenario
    program_len: int = 1
    #: run a whole harness experiment instead of a single collective ("none"
    #: = plain collective run); drawn after program_len — trailing fields
    #: keep pre-knob seeds expanding to the same scenario
    harness_experiment: str = "none"
    #: named fault mix injected into a small multi-tenant workload run
    #: ("none" = no fault extension); mutually exclusive with
    #: harness_experiment (sanitize keeps at most one extension active)
    fault_mix: str = "none"
    #: recovery knobs for faulted workload runs, declared (and drawn) after
    #: fault_mix so pre-recovery seeds expand to the same scenario; sanitize
    #: folds them to these defaults whenever the fault mix loses no nodes
    failure_policy: str = "fail"
    checkpoint_every: int = 0
    #: upgrade the fault extension to a correlated failure-domain outage;
    #: a separate trailing flag (folded into fault_mix by sanitize) because
    #: appending to the fault_mix draw tuple would remap historical seeds
    domain_outage: bool = False

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    def replace(self, **kwargs) -> "Scenario":
        return dataclasses.replace(self, **kwargs)


def placement_list(
    pattern: str, n_ranks: int, ranks_per_node: int, max_nodes: Optional[int] = None
) -> Optional[List[int]]:
    """Explicit rank->node list for a placement pattern (``None`` = native block).

    ``block`` returns ``None`` so topologies use their native ``ranks_per_node``
    packing.  ``cyclic`` deals ranks round-robin over the nodes block placement
    would have used.  ``irregular`` keeps runs contiguous but makes them
    lopsided (node ``i`` holds ``ranks_per_node + (i % 2)`` ranks), the shape
    that distinguishes the irregular selector class from plain block.
    """
    if pattern == "block":
        return None
    n_nodes = max(1, -(-n_ranks // ranks_per_node))
    if max_nodes is not None:
        n_nodes = min(n_nodes, max_nodes)
    if pattern == "cyclic":
        return [rank % n_nodes for rank in range(n_ranks)]
    if pattern == "irregular":
        out: List[int] = []
        node = 0
        while len(out) < n_ranks:
            take = ranks_per_node + (node % 2)
            out.extend([min(node, n_nodes - 1)] * take)
            node += 1
        return out[:n_ranks]
    raise ValueError(f"unknown placement pattern {pattern!r}")


def sanitize(scenario: Scenario) -> Scenario:
    """Fold an arbitrary draw onto the nearest valid scenario.

    The rules mirror the session API's own constraints; applying ``sanitize``
    twice is a no-op, which the shrinker relies on (every reduction candidate
    is re-sanitised before it is executed).
    """
    updates: Dict[str, object] = {}
    preset = scenario.preset
    if preset not in PRESETS:
        preset = "flat"
        updates["preset"] = preset

    if preset == "flat":
        # one rank per node, no placement, no shared stages, no rails
        updates.update(
            ranks_per_node=1,
            placement="block",
            nics_per_node=1,
            routing="minimal",
            contention="reservation",
        )
    else:
        if preset not in _FABRIC_PRESETS:
            updates.update(nics_per_node=1, routing="minimal")
        if preset == "rail_fat_tree":
            # the rail preset pins its own wiring: striped rails over an
            # adaptive-routed tree, native block placement
            updates.update(routing="adaptive", placement="block")
        if preset not in _CONTENDED_PRESETS:
            updates["contention"] = "reservation"
        if preset in _FABRIC_PRESETS:
            # keep every rank inside the fabric's host slots even under the
            # lopsided irregular pattern (which can spill one node past block)
            max_rpn = max(1, -(-scenario.n_ranks // _FABRIC_HOSTS))
            if scenario.ranks_per_node < max_rpn:
                updates["ranks_per_node"] = max_rpn

    compression = scenario.compression
    if compression != "off":
        # the compressed variants fix their own schedule
        updates["algorithm"] = "auto"
    if scenario.op != "allreduce" and compression == "nd":
        updates["compression"] = compression = "on"
    if scenario.op == "reduce_scatter" and compression == "di":
        updates["compression"] = compression = "on"
    if scenario.op != "allreduce":
        updates["algorithm"] = "auto"

    if scenario.algorithm == "hierarchical" and updates.get("algorithm") is None:
        # hierarchical on a one-rank-per-node fabric degenerates but is legal;
        # keep it — it exercises the degenerate path on purpose
        pass

    # bcast/allgather/reduce_scatter payloads must be non-degenerate enough
    # for the op to mean anything; 0-element stays legal for every op.
    if scenario.op == "reduce_scatter" and 0 < scenario.msg_elems < scenario.n_ranks:
        updates["msg_elems"] = scenario.n_ranks

    if not 1 <= scenario.program_len <= 4:
        updates["program_len"] = min(4, max(1, scenario.program_len))

    # ------------------------------------------------ extension knobs
    harness = scenario.harness_experiment
    if harness not in HARNESS_EXPERIMENTS:
        harness = "none"
        updates["harness_experiment"] = harness
    fault_mix = scenario.fault_mix
    if fault_mix not in FAULT_MIXES:
        fault_mix = "none"
        updates["fault_mix"] = fault_mix
    if harness != "none" and fault_mix != "none":
        # at most one extension per scenario; the harness run wins (the
        # faults experiment inside HARNESS_EXPERIMENTS covers fault paths)
        fault_mix = "none"
        updates["fault_mix"] = fault_mix
    domain_outage = bool(scenario.domain_outage)
    if domain_outage is not scenario.domain_outage:
        updates["domain_outage"] = domain_outage
    if domain_outage and harness != "none":
        # the harness extension won above; drop the outage flag with the mix
        domain_outage = False
        updates["domain_outage"] = domain_outage
    if domain_outage and fault_mix != "domain_outage":
        # the flag upgrades (or installs) the fault extension
        fault_mix = "domain_outage"
        updates["fault_mix"] = fault_mix
    if fault_mix != "none":
        # fault injection drives a workload run on a fixed-size switch
        # fabric; fold other presets onto the fat tree
        if preset not in _FABRIC_PRESETS:
            updates["preset"] = "fat_tree"
        # judge rails by the effective value: an earlier non-fabric fold may
        # have already forced nics_per_node to 1 in `updates`
        nics = updates.get("nics_per_node", scenario.nics_per_node)
        if fault_mix == "rail_outage" and nics < 2:
            # a single-rail node would lose all connectivity
            updates["nics_per_node"] = 2

    # recovery knobs: valid values, and inert (folded to defaults) unless
    # the fault mix actually loses nodes — a restart policy on a link-flap
    # scenario would never fire, and folding keeps shrinking convergent
    failure_policy = scenario.failure_policy
    checkpoint_every = scenario.checkpoint_every
    if failure_policy not in ("fail", "restart", "restart_elsewhere"):
        failure_policy = "fail"
        updates["failure_policy"] = failure_policy
    if (
        isinstance(checkpoint_every, bool)
        or not isinstance(checkpoint_every, int)
        or not 0 <= checkpoint_every <= 8
    ):
        checkpoint_every = min(8, max(0, int(checkpoint_every)))
        updates["checkpoint_every"] = checkpoint_every
    if fault_mix not in _NODE_LOSS_MIXES:
        if failure_policy != "fail":
            updates["failure_policy"] = "fail"
        if checkpoint_every != 0:
            updates["checkpoint_every"] = 0

    return scenario.replace(**updates) if updates else scenario


def generate_scenario(seed: int) -> Scenario:
    """Expand ``seed`` into one valid scenario (deterministic)."""
    rng = random.Random(seed)
    preset = rng.choice(PRESETS)
    n_ranks = rng.choice((2, 3, 4, 5, 6, 8, 9, 12, 16))
    raw = Scenario(
        seed=seed,
        preset=preset,
        n_ranks=n_ranks,
        ranks_per_node=rng.choice((1, 2, 3, 4)),
        placement=rng.choice(PLACEMENT_PATTERNS),
        nics_per_node=rng.choice((1, 2)),
        routing=rng.choice(("minimal", "adaptive")),
        contention=rng.choice(("reservation", "fair")),
        # allreduce carries most invariants (values, selector, compression
        # variants) so it gets half the mass
        op=rng.choice(("allreduce",) * 3 + OPS[1:]),
        algorithm=rng.choice(ALGORITHMS),
        compression=rng.choice(COMPRESSIONS),
        codec=rng.choice(CODECS),
        error_bound=rng.choice(ERROR_BOUNDS),
        msg_elems=rng.choice(MESSAGE_ELEMS),
        dtype=rng.choice(DTYPES + ("float64",)),  # bias toward float64
        data_profile=rng.choice(DATA_PROFILES),
        # drawn last (and biased toward 1) so pre-knob seeds keep every other
        # dimension's draw; multi-step runs cost program_len simulations
        program_len=rng.choice((1, 1, 1, 2, 3, 4)),
        # extension knobs drawn after program_len (same trailing-field rule);
        # both are rare — a harness experiment or faulted workload run costs
        # seconds where a plain collective costs milliseconds
        harness_experiment=rng.choice(
            ("none",) * 36 + HARNESS_EXPERIMENTS[1:]
        ),
        fault_mix=rng.choice(_FAULT_MIX_DRAW),
        # recovery knobs, drawn after every pre-existing dimension; sanitize
        # folds them to defaults unless the fault mix loses nodes, so they
        # only change scenarios that were already faulted-workload runs
        failure_policy=rng.choice(
            ("fail", "fail", "restart", "restart_elsewhere", "restart_elsewhere")
        ),
        checkpoint_every=rng.choice((0, 0, 1, 2, 4)),
        # rare: upgrades the run to a correlated domain outage (expensive)
        domain_outage=rng.choice((False,) * 39 + (True,)),
    )
    return sanitize(raw)


def scenario_matrix(seed: int, count: int) -> List[Scenario]:
    """``count`` scenarios derived from ``seed`` (scenario ``i`` uses seed
    ``seed * 1_000_003 + i`` so sweeps with different base seeds do not
    collide on their early indices)."""
    return [generate_scenario(seed * 1_000_003 + i) for i in range(count)]
