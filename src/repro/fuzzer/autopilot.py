"""Time-boxed fuzzing sweeps and scenario shrinking.

:func:`sweep` drives the generator/executor loop against a wall-clock budget:
scenario ``i`` of a sweep seeded ``S`` uses generator seed
``S * 1_000_003 + i``, every record is appended to the results database, and
each failing scenario is shrunk to a minimal reproducer before the sweep
moves on (the shrunk record is stored too, linked via ``shrunk_from``).

:func:`shrink` is deterministic greedy delta-debugging over scenario fields:
for each field it tries an ordered list of simpler candidates (fewer ranks,
smaller payload, plainer fabric, compression off ...) and keeps a candidate
iff the failure predicate still holds, looping until a full pass changes
nothing.  Determinism matters: the same failing scenario always shrinks to
the same minimal reproducer, so regression tests can pin it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fuzzer.database import ResultsDatabase
from repro.fuzzer.executor import execute, run_id_for
from repro.fuzzer.generator import Scenario, generate_scenario, sanitize

__all__ = ["sweep", "shrink", "SweepReport"]

#: per-field reduction candidates, applied in this order; each candidate is
#: (field, simpler_value) and is only tried when it differs from the current
#: value.  Ordering goes for the biggest simplifications first so minimal
#: reproducers collapse onto flat/uncompressed scenarios whenever possible.
_REDUCTIONS = (
    # recovery knobs first: a failure that reproduces without the domain
    # outage, the restart machinery or checkpointing is far simpler — and
    # dropping them re-folds the scenario onto its pre-recovery shape
    ("domain_outage", (False,)),
    ("failure_policy", ("fail",)),
    ("checkpoint_every", (0, 1)),
    # extension knobs next: a failure that reproduces without the harness
    # run or the fault schedule is a far simpler reproducer
    ("harness_experiment", ("none",)),
    ("fault_mix", ("none",)),
    ("preset", ("flat", "two_level", "shared_uplink", "fat_tree")),
    ("compression", ("off",)),
    ("codec", ("szx",)),
    ("contention", ("reservation",)),
    ("placement", ("block",)),
    ("routing", ("minimal",)),
    ("nics_per_node", (1,)),
    ("program_len", (1, 2)),
    ("op", ("allreduce",)),
    ("algorithm", ("auto",)),
    ("dtype", ("float64",)),
    ("data_profile", ("gaussian",)),
    ("error_bound", (1e-3,)),
    ("n_ranks", (2, 3, 4, 8)),
    ("ranks_per_node", (1, 2)),
    ("msg_elems", (0, 1, 2, 8, 128, 1000)),
)


@dataclass
class SweepReport:
    """What a :func:`sweep` did: counts plus the failing run ids."""

    runs: int = 0
    ok: int = 0
    failures: List[str] = field(default_factory=list)
    reproducers: Dict[str, str] = field(default_factory=dict)  # failing -> shrunk
    elapsed: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.failures


def shrink(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_attempts: int = 400,
) -> Scenario:
    """Greedy deterministic reduction of ``scenario`` under ``still_fails``.

    Every candidate is re-sanitised before the predicate sees it, so the
    shrinker can never wander outside the valid scenario space.  Returns the
    smallest scenario reached (``scenario`` itself if nothing simpler fails).
    """
    current = sanitize(scenario)
    attempts = 0
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for field_name, candidates in _REDUCTIONS:
            value = getattr(current, field_name)
            # only candidates strictly simpler than the current value (earlier
            # in the ordered tuple) are reductions; anything else would let a
            # later pass re-grow a field and oscillate
            ceiling = candidates.index(value) if value in candidates else len(candidates)
            for candidate in candidates[:ceiling]:
                trial = sanitize(current.replace(**{field_name: candidate}))
                if trial == current:
                    continue
                attempts += 1
                if attempts > max_attempts:
                    return current
                if still_fails(trial):
                    current = trial
                    changed = True
                    break  # keep the simplest failing candidate for this field
    return current


def _record_fails(record: Dict[str, object]) -> bool:
    return record.get("status") in ("violation", "error")


def sweep(
    time_budget: float,
    seed: int,
    database: Optional[ResultsDatabase] = None,
    max_runs: Optional[int] = None,
    clock: Callable[[], float] = time.monotonic,
    log: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Fuzz until ``time_budget`` seconds elapse (or ``max_runs`` scenarios).

    Every executed record lands in ``database`` (when given).  Failing
    scenarios are shrunk immediately — shrinking re-executes candidates but
    does not extend the budget, so a pathological failure cannot run away
    with the sweep (the shrinker's own attempt cap bounds it).
    """
    report = SweepReport()
    start = clock()
    index = 0
    while (max_runs is None or index < max_runs) and (clock() - start) < time_budget:
        scenario = generate_scenario(seed * 1_000_003 + index)
        index += 1
        record = execute(scenario)
        report.runs += 1
        if database is not None:
            database.append(record)
        if not _record_fails(record):
            report.ok += 1
            continue
        run_id = str(record["run_id"])
        report.failures.append(run_id)
        if log is not None:
            log(f"violation in {run_id}: {record['violations']}")
        minimal = shrink(scenario, lambda sc: _record_fails(execute(sc)))
        minimal_record = execute(minimal)
        minimal_record["shrunk_from"] = run_id
        report.reproducers[run_id] = str(minimal_record["run_id"])
        if database is not None and run_id_for(minimal) != run_id:
            database.append(minimal_record)
    report.elapsed = clock() - start
    return report
