"""Command-line entry points for the scenario fuzzer.

::

    python -m repro.fuzzer run --time-budget 60 --seed 7 [--db PATH] [--max-runs N]
    python -m repro.fuzzer replay RUN_ID [--db PATH]
    python -m repro.fuzzer show RUN_ID [--db PATH]

``run`` sweeps scenarios under a wall-clock budget and exits non-zero if any
invariant was violated.  ``replay`` re-executes the scenario stored under a
run id and verifies the recorded makespan and value digest bit-for-bit.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fuzzer.autopilot import sweep
from repro.fuzzer.database import ResultsDatabase
from repro.fuzzer.executor import execute
from repro.fuzzer.generator import Scenario

DEFAULT_DB = "fuzz_results.jsonl"


def _cmd_run(args: argparse.Namespace) -> int:
    db = ResultsDatabase(args.db)
    report = sweep(
        time_budget=args.time_budget,
        seed=args.seed,
        database=db,
        max_runs=args.max_runs,
        log=lambda msg: print(f"[fuzzer] {msg}", file=sys.stderr),
    )
    print(
        f"fuzzer: {report.runs} runs in {report.elapsed:.1f}s "
        f"({report.ok} ok, {len(report.failures)} failing) -> {args.db}"
    )
    for failing, minimal in report.reproducers.items():
        print(f"  {failing} shrinks to {minimal} (replay with: python -m repro.fuzzer replay {minimal})")
    return 1 if report.failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    db = ResultsDatabase(args.db)
    record = db.get(args.run_id)
    if record is None:
        print(f"run id {args.run_id!r} not found in {args.db}", file=sys.stderr)
        return 2
    scenario = Scenario.from_dict(record["scenario"])
    fresh = execute(scenario)
    mismatches = []
    for key in ("makespan", "bytes_sent", "value_digest", "status"):
        if key in record and fresh.get(key) != record.get(key):
            mismatches.append(f"{key}: recorded {record.get(key)!r}, replay {fresh.get(key)!r}")
    if fresh.get("violations"):
        print(f"replay of {args.run_id}: invariant violations reproduced:")
        for violation in fresh["violations"]:
            print(f"  [{violation['invariant']}] {violation['detail']}")
    if mismatches:
        print(f"replay of {args.run_id} DIVERGED from the recorded run:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    print(f"replay of {args.run_id}: bit-for-bit identical to the recorded run")
    return 1 if fresh.get("status") != "ok" else 0


def _cmd_show(args: argparse.Namespace) -> int:
    record = ResultsDatabase(args.db).get(args.run_id)
    if record is None:
        print(f"run id {args.run_id!r} not found in {args.db}", file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.fuzzer", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="time-boxed invariant sweep")
    run_p.add_argument("--time-budget", type=float, default=60.0, metavar="SECONDS")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-runs", type=int, default=None)
    run_p.add_argument("--db", default=DEFAULT_DB)
    run_p.set_defaults(func=_cmd_run)

    replay_p = sub.add_parser("replay", help="re-execute a recorded run id")
    replay_p.add_argument("run_id")
    replay_p.add_argument("--db", default=DEFAULT_DB)
    replay_p.set_defaults(func=_cmd_replay)

    show_p = sub.add_parser("show", help="print a recorded run")
    show_p.add_argument("run_id")
    show_p.add_argument("--db", default=DEFAULT_DB)
    show_p.set_defaults(func=_cmd_show)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
