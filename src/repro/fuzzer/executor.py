"""Scenario execution with the full invariant catalog checked on every run.

The executor turns a :class:`~repro.fuzzer.generator.Scenario` into a live
``Cluster``/``Communicator`` session, runs its program — ``program_len``
back-to-back collectives with per-step payloads — and checks every invariant
that applies to that scenario:

``values``
    Every rank's result matches the numpy reference within the scenario's
    tolerance — exact (1e-10 relative) for uncompressed runs, the documented
    error-accumulation envelope for compressed runs.  Skipped for the
    fixed-rate ``zfp_fxr`` codec, whose error is data-dependent by design.
``capacity``
    No shared stage is ever allocated beyond its capacity: the run is traced
    with :func:`repro.mpisim.topology.trace_reservations` and audited with
    :func:`~repro.mpisim.topology.capacity_conservation_violations`.  Holds
    for both contention disciplines (fair runs re-express fluid segments as
    reservations).
``fair_share``
    On ``contention="fair"`` runs, every max-min allocation the registry
    commits is checked live: stages never exceed capacity, backlogged stages
    are saturated, and every active flow is bottlenecked on some saturated
    stage of its path.
``determinism``
    Executing the same scenario twice from freshly built sessions yields the
    same makespan, the same bytes-sent counter and bit-identical values.
``codec_roundtrip``
    For error-bounded codecs, the configured codec round-trips the rank-0
    payload within its effective bound (checked outside the collective, so a
    values failure can be attributed to the schedule vs the codec).

Results are plain dicts (JSONL-ready) keyed by a deterministic ``run_id``
derived from the scenario's canonical JSON — replaying a run id re-executes
the identical scenario.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import Cluster
from repro.api.communicator import Communicator
from repro.collectives.reduce_scatter import partition_chunks
from repro.fuzzer.generator import _FABRIC_HOSTS, Scenario, placement_list, sanitize
from repro.mpisim.fairshare import FairShareRegistry
from repro.mpisim.topology import (
    capacity_conservation_violations,
    trace_reservations,
)

__all__ = [
    "build_cluster",
    "build_communicator",
    "make_inputs",
    "execute",
    "run_id_for",
    "trace_fair_allocations",
]

_FAIR_TOL = 1e-9


def run_id_for(scenario: Scenario) -> str:
    """Deterministic run id: hash of the scenario's canonical JSON."""
    blob = json.dumps(scenario.to_dict(), sort_keys=True, separators=(",", ":"))
    return "fz-" + hashlib.sha256(blob.encode()).hexdigest()[:12]


# ------------------------------------------------------------------- building


def build_cluster(scenario: Scenario) -> Cluster:
    """Instantiate the scenario's fabric as a ``Cluster``."""
    sc = scenario
    kwargs: Dict[str, object] = {}
    if sc.preset != "flat":
        kwargs["ranks_per_node"] = sc.ranks_per_node
    if sc.preset in ("two_level", "shared_uplink", "fat_tree", "dragonfly"):
        kwargs["placement"] = placement_list(
            sc.placement,
            sc.n_ranks,
            sc.ranks_per_node,
            max_nodes=_FABRIC_HOSTS if sc.preset in ("fat_tree", "dragonfly") else None,
        )
    if sc.preset in ("shared_uplink", "fat_tree", "dragonfly", "rail_fat_tree"):
        kwargs["contention"] = sc.contention
    if sc.preset in ("fat_tree", "dragonfly"):
        kwargs["nics_per_node"] = sc.nics_per_node
        kwargs["routing"] = sc.routing
    if sc.preset == "rail_fat_tree":
        kwargs["nics_per_node"] = sc.nics_per_node
    cluster = Cluster.from_preset(sc.preset, **kwargs)
    return cluster.with_updates(
        config=cluster.config.with_updates(codec=sc.codec, error_bound=sc.error_bound)
    )


def build_communicator(scenario: Scenario) -> Communicator:
    """A fresh session for the scenario (a new one per run; no shared state)."""
    return build_cluster(scenario).communicator(scenario.n_ranks)


def make_inputs(scenario: Scenario, step: int = 0) -> List[np.ndarray]:
    """Per-rank payload vectors (deterministic from the scenario seed).

    ``step`` mixes a fresh stream in for each collective of a multi-step
    program (``program_len > 1``); step 0 reproduces the pre-knob payloads.
    """
    rng = np.random.default_rng((scenario.seed ^ 0x5EED) + step * 0x9E3779B9)
    dtype = np.dtype(scenario.dtype)
    n, length = scenario.n_ranks, scenario.msg_elems
    out: List[np.ndarray] = []
    for rank in range(n):
        profile = scenario.data_profile
        if profile == "gaussian":
            arr = rng.standard_normal(length)
        elif profile == "ramp":
            arr = np.linspace(-1.0, 1.0, num=length) * (rank + 1)
        elif profile == "constant":
            arr = np.full(length, 0.5 + 0.25 * rank)
        elif profile == "zeros":
            arr = np.zeros(length)
        elif profile == "mixed_scale":
            arr = rng.standard_normal(length) * np.logspace(-3, 3, num=max(length, 1))[:length]
        else:
            raise ValueError(f"unknown data profile {profile!r}")
        out.append(np.asarray(arr, dtype=dtype))
    return out


# ------------------------------------------------------------ fair-share hook


@contextmanager
def trace_fair_allocations():
    """Audit every max-min allocation a :class:`FairShareRegistry` commits.

    After each flow arrival and each committed departure the registry's
    allocation must satisfy the bottleneck property; every violation is
    appended to the yielded list as a ``(kind, detail)`` pair.  Mirrors the
    property-suite check, but attached globally so fuzzer runs audit the
    engine's own registries rather than a synthetic one.
    """
    violations: List[Tuple[str, str]] = []
    real_open, real_commit = FairShareRegistry.open_flow, FairShareRegistry.commit_departure

    def check(registry) -> None:
        active = registry.active_flows()
        stages = {id(stage): stage for flow in active for stage in flow.stages}
        saturated = set()
        for key, stage in stages.items():
            rate = stage.allocated_rate()
            if rate > stage.capacity * (1.0 + _FAIR_TOL):
                violations.append(
                    ("overcommit", f"stage allocated {rate:.6g} > capacity {stage.capacity:.6g}")
                )
            if rate >= stage.capacity * (1.0 - _FAIR_TOL):
                saturated.add(key)
            elif stage.backlogged and any(
                len(flow.stages) == 1 and flow.stages[0] is stage for flow in active
            ):
                # a backlogged stage that is some flow's only stage has no
                # other bottleneck to defer to: max-min must fill it
                violations.append(
                    (
                        "unsaturated",
                        f"backlogged single-stage bottleneck allocated {rate:.6g} "
                        f"< capacity {stage.capacity:.6g}",
                    )
                )
        for flow in active:
            if flow.remaining <= 0.0:
                continue
            if flow.rate <= 0.0:
                violations.append(("starved", f"flow {flow.flow_id} has rate {flow.rate!r}"))
            elif not any(id(stage) in saturated for stage in flow.stages):
                violations.append(
                    ("unbottlenecked", f"flow {flow.flow_id} is not bottlenecked anywhere")
                )

    def open_flow(self, *args, **kwargs):
        flow = real_open(self, *args, **kwargs)
        check(self)
        return flow

    def commit_departure(self):
        result = real_commit(self)
        check(self)
        return result

    FairShareRegistry.open_flow = open_flow  # type: ignore[method-assign]
    FairShareRegistry.commit_departure = commit_departure  # type: ignore[method-assign]
    try:
        yield violations
    finally:
        FairShareRegistry.open_flow = real_open  # type: ignore[method-assign]
        FairShareRegistry.commit_departure = real_commit  # type: ignore[method-assign]


# ----------------------------------------------------------------- execution


def _run_collective(comm: Communicator, scenario: Scenario, inputs: List[np.ndarray]):
    op = scenario.op
    if op == "allreduce":
        return comm.allreduce(
            inputs, algorithm=scenario.algorithm, compression=scenario.compression
        )
    if op == "allgather":
        return comm.allgather(inputs, compression=scenario.compression)
    if op == "bcast":
        return comm.bcast(inputs[0], compression=scenario.compression)
    if op == "reduce_scatter":
        return comm.reduce_scatter(inputs, compression=scenario.compression)
    raise ValueError(f"unknown op {scenario.op!r}")


def _expected_values(scenario: Scenario, inputs: List[np.ndarray]) -> List[np.ndarray]:
    wide = [arr.astype(np.float64) for arr in inputs]
    op = scenario.op
    if op == "allreduce":
        return [np.sum(wide, axis=0)] * scenario.n_ranks
    if op == "allgather":
        # each rank's value is the (n_ranks, block) stack of all contributions
        return [np.stack(wide)] * scenario.n_ranks
    if op == "bcast":
        return [wide[0]] * scenario.n_ranks
    if op == "reduce_scatter":
        return partition_chunks(np.sum(wide, axis=0), scenario.n_ranks)
    raise ValueError(f"unknown op {scenario.op!r}")


def _value_tolerance(scenario: Scenario) -> Optional[Tuple[float, float]]:
    """(rtol, atol) for the values invariant; ``None`` = skip the check."""
    # float32 runs accumulate in float32 while the reference sums in float64,
    # so they always need a relative term scaled to the data magnitude
    f32_rtol = 1e-5 if scenario.dtype == "float32" else 0.0
    if scenario.compression == "off":
        rtol = max(1e-10, f32_rtol)
        return (rtol, rtol * 1e-2)
    if scenario.codec == "zfp_fxr":
        return None  # fixed-rate: error is data-dependent, not eb-bounded
    n = scenario.n_ranks
    eb = scenario.error_bound
    if scenario.op == "allreduce":
        # error-accumulation envelope covering every variant: ring chains
        # re-compress partial sums up to n times; the topology-aware schedule
        # is bounded by (n_nodes + 2) * eb * n_nodes with n_nodes <= n
        atol = (n + 2) * max(1, n) * eb
    else:  # allgather / bcast / reduce_scatter: bounded compression chains
        atol = (n + 1) * eb
    return (f32_rtol, atol * 1.01)


def _digest(values: List[np.ndarray]) -> str:
    h = hashlib.sha256()
    for value in values:
        arr = np.ascontiguousarray(value)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _single_run(scenario: Scenario):
    """One traced execution of the scenario's whole program.

    Returns ``(comm, outcomes, step_values, violations)``: one outcome and
    one per-rank value list per collective step.  Each step is traced and
    audited separately — the engine resets contention state per run, so a
    cross-step reservation trace would see overlapping timelines and
    misreport capacity violations.
    """
    comm = build_communicator(scenario)
    outcomes = []
    step_values: List[List[np.ndarray]] = []
    problems: List[Dict[str, str]] = []
    for step in range(scenario.program_len):
        inputs = make_inputs(scenario, step)
        with trace_reservations() as events, trace_fair_allocations() as fair_violations:
            outcome = _run_collective(comm, scenario, inputs)
        outcomes.append(outcome)
        step_values.append(
            [np.asarray(outcome.value(rank)) for rank in range(scenario.n_ranks)]
        )
        for stage, begin, previous in capacity_conservation_violations(events):
            problems.append(
                {
                    "invariant": "capacity",
                    "detail": (
                        f"step {step}: stage capacity={stage.capacity:.6g} reservation "
                        f"begins at {begin:.9g} before previous finish {previous:.9g}"
                    ),
                }
            )
        for kind, detail in fair_violations:
            problems.append(
                {"invariant": "fair_share", "detail": f"step {step}: {kind}: {detail}"}
            )
    return comm, outcomes, step_values, problems


def _audit_events(events, fair_violations, label: str) -> List[Dict[str, str]]:
    """Capacity + fair-share violations from one traced region."""
    problems: List[Dict[str, str]] = []
    for stage, begin, previous in capacity_conservation_violations(events):
        problems.append(
            {
                "invariant": "capacity",
                "detail": (
                    f"{label}: stage capacity={stage.capacity:.6g} reservation "
                    f"begins at {begin:.9g} before previous finish {previous:.9g}"
                ),
            }
        )
    for kind, detail in fair_violations:
        problems.append(
            {"invariant": "fair_share", "detail": f"{label}: {kind}: {detail}"}
        )
    return problems


def _execute_harness(scenario: Scenario, record: Dict[str, object]) -> Dict[str, object]:
    """Run a whole harness experiment under the fuzzer's invariant monitors.

    The experiment runs twice; both runs are audited for capacity
    conservation and the fair bottleneck property, and their result rows
    must agree bit-for-bit (canonical JSON) — harness experiments are
    seeded, so nondeterminism is a bug.
    """
    from repro.harness.runner import run_experiment

    def one_run():
        with trace_reservations() as events, trace_fair_allocations() as fair:
            result = run_experiment(scenario.harness_experiment, scale="small")
        return result, _audit_events(events, fair, scenario.harness_experiment)

    try:
        first, problems = one_run()
        second, rerun_problems = one_run()
    except Exception as exc:  # noqa: BLE001 - a crash *is* a fuzzing result
        record.update(
            status="error",
            violations=[
                {"invariant": "no_crash", "detail": f"{type(exc).__name__}: {exc}"}
            ],
        )
        return record

    violations = problems + rerun_problems
    canonical = json.dumps(first.rows, sort_keys=True, default=repr)
    if canonical != json.dumps(second.rows, sort_keys=True, default=repr):
        violations.append(
            {
                "invariant": "determinism",
                "detail": f"experiment {scenario.harness_experiment!r} rows "
                "differ between two runs",
            }
        )
    record.update(
        status="violation" if violations else "ok",
        violations=violations,
        harness_experiment=scenario.harness_experiment,
        harness_rows=len(first.rows),
    )
    return record


def _execute_faulted_workload(
    scenario: Scenario, record: Dict[str, object]
) -> Dict[str, object]:
    """Run a small multi-tenant workload under the scenario's fault mix.

    The same (jobs, schedule) pair runs twice; both runs are audited for
    capacity conservation (against reserve-time capacities, so mid-run
    degradations are covered) and the fair bottleneck property, and their
    makespans and per-job finish times must be bit-identical.
    """
    from repro.faults import (
        DRAGONFLY_LINK_FAMILIES,
        FAT_TREE_LINK_FAMILIES,
        FaultSchedule,
    )
    from repro.workload import JobMix, WorkloadEngine

    sc = scenario
    rpn = sc.ranks_per_node
    kwargs: Dict[str, object] = {
        "ranks_per_node": rpn,
        "contention": sc.contention,
        "nics_per_node": sc.nics_per_node,
    }
    if sc.preset in ("fat_tree", "dragonfly"):
        kwargs["routing"] = sc.routing
    policy = {"block": "packed", "cyclic": "spread", "irregular": "random"}[
        sc.placement
    ]

    try:
        cluster = Cluster.from_preset(sc.preset, **kwargs)
        n_fabric = int(cluster.topology.n_fabric_nodes)
        schedule = FaultSchedule.generate(
            sc.fault_mix,
            sc.seed,
            # target the busy half of the fabric so faults hit live tenants
            n_nodes=max(1, n_fabric // 2),
            n_ranks=max(1, n_fabric // 2) * rpn,
            nics_per_node=sc.nics_per_node,
            horizon=6e-3,
            link_families=(
                DRAGONFLY_LINK_FAMILIES
                if sc.preset == "dragonfly"
                else FAT_TREE_LINK_FAMILIES
            ),
        )
        # jobs span >= 2 nodes so fabric faults intersect tenant traffic
        mix = JobMix(n_jobs=4, arrival_rate=900.0, sizes=(2 * rpn, 4 * rpn))
        specs = mix.generate(sc.seed)

        def one_run():
            engine = WorkloadEngine(
                cluster, policy=policy, seed=sc.seed, faults=schedule,
                failure_policy=sc.failure_policy,
                checkpoint=sc.checkpoint_every,
            )
            with trace_reservations() as events, trace_fair_allocations() as fair:
                report = engine.run(specs, baseline=False)
            # outcome + restart counts join the determinism fingerprint:
            # recovery decisions must replay exactly, not just finish times
            finishes = tuple(
                (rec.finished, rec.outcome, rec.restarts, rec.last_durable_step)
                for rec in report.records
            )
            return report, finishes, _audit_events(
                events, fair, sc.fault_mix
            )

        report1, finishes, problems = one_run()
        report2, finishes2, rerun_problems = one_run()
        makespan, makespan2 = report1.makespan, report2.makespan
    except Exception as exc:  # noqa: BLE001 - a crash *is* a fuzzing result
        record.update(
            status="error",
            violations=[
                {"invariant": "no_crash", "detail": f"{type(exc).__name__}: {exc}"}
            ],
        )
        return record

    violations = problems + rerun_problems
    if makespan != makespan2 or finishes != finishes2:
        violations.append(
            {
                "invariant": "determinism",
                "detail": (
                    f"faulted workload replay diverged: makespan {makespan!r} "
                    f"vs {makespan2!r}"
                ),
            }
        )
    record.update(
        status="violation" if violations else "ok",
        violations=violations,
        makespan=float(makespan),
        fault_mix=sc.fault_mix,
        fault_events=len(schedule),
        failed_jobs=report1.failed_jobs,
        restarts=report1.total_restarts,
    )
    return record


def execute(scenario: Scenario) -> Dict[str, object]:
    """Run ``scenario`` with every applicable invariant checked.

    Returns a JSONL-ready record: ``status`` is ``"ok"``, ``"violation"``
    (one or more invariants failed) or ``"error"`` (the run raised).

    Extension scenarios take dedicated paths: ``harness_experiment`` runs a
    whole harness experiment (twice, audited + compared) and ``fault_mix``
    runs a faulted multi-tenant workload (twice, audited + compared).
    """
    scenario = sanitize(scenario)
    record: Dict[str, object] = {
        "run_id": run_id_for(scenario),
        "scenario": scenario.to_dict(),
    }
    if scenario.harness_experiment != "none":
        return _execute_harness(scenario, record)
    if scenario.fault_mix != "none":
        return _execute_faulted_workload(scenario, record)
    try:
        comm, outcomes, step_values, problems = _single_run(scenario)
    except Exception as exc:  # noqa: BLE001 - a crash *is* a fuzzing result
        record.update(
            status="error",
            violations=[{"invariant": "no_crash", "detail": f"{type(exc).__name__}: {exc}"}],
        )
        return record

    violations = list(problems)
    makespan = sum(outcome.total_time for outcome in outcomes)
    flat_values = [value for values in step_values for value in values]

    tolerances = _value_tolerance(scenario)
    if tolerances is not None:
        rtol, atol = tolerances
        for step, values in enumerate(step_values):
            expected = _expected_values(scenario, make_inputs(scenario, step))
            bad = False
            for rank, (got, want) in enumerate(zip(values, expected)):
                want = np.asarray(want)
                if got.shape != want.shape:
                    violations.append(
                        {
                            "invariant": "values",
                            "detail": (
                                f"step {step} rank {rank}: shape {got.shape} != "
                                f"expected {want.shape}"
                            ),
                        }
                    )
                    continue
                if got.size == 0:
                    continue
                err = np.max(np.abs(got.astype(np.float64) - want.astype(np.float64)))
                bound = atol + rtol * max(1.0, float(np.max(np.abs(want))))
                if not err <= bound:
                    violations.append(
                        {
                            "invariant": "values",
                            "detail": (
                                f"step {step} rank {rank}: max error {err:.6g} "
                                f"exceeds bound {bound:.6g}"
                            ),
                        }
                    )
                    bad = True
                    break  # one rank's detail is enough; keep records compact
            if bad:
                break

    # determinism: a fresh session over the same scenario must be bit-identical
    try:
        _, outcomes2, step_values2, _ = _single_run(scenario)
    except Exception as exc:  # noqa: BLE001
        violations.append(
            {
                "invariant": "determinism",
                "detail": f"re-run raised {type(exc).__name__}: {exc}",
            }
        )
    else:
        makespan2 = sum(outcome.total_time for outcome in outcomes2)
        if makespan2 != makespan:
            violations.append(
                {
                    "invariant": "determinism",
                    "detail": f"makespan {makespan!r} != re-run {makespan2!r}",
                }
            )
        elif _digest([v for vs in step_values2 for v in vs]) != _digest(flat_values):
            violations.append(
                {"invariant": "determinism", "detail": "re-run values differ bitwise"}
            )

    roundtrip_problem = _codec_roundtrip_problem(scenario)
    if roundtrip_problem is not None:
        violations.append(roundtrip_problem)

    record.update(
        status="violation" if violations else "ok",
        violations=violations,
        makespan=float(makespan),
        bytes_sent=sum(int(outcome.sim.total_bytes_sent) for outcome in outcomes),
        value_digest=_digest(flat_values),
        algorithm=comm.last_algorithm,
        compression_route=comm.last_compression,
    )
    return record


def _codec_roundtrip_problem(scenario: Scenario) -> Optional[Dict[str, str]]:
    """Round-trip the rank-0 payload through the configured codec."""
    if scenario.compression == "off" or scenario.codec == "zfp_fxr":
        return None
    codec = build_cluster(scenario).config.make_codec()
    data = make_inputs(scenario)[0]
    try:
        restored = codec.decompress_bytes(codec.compress_bytes(data))
    except Exception as exc:  # noqa: BLE001
        return {
            "invariant": "codec_roundtrip",
            "detail": f"round-trip raised {type(exc).__name__}: {exc}",
        }
    if restored.shape != data.shape or restored.dtype != data.dtype:
        return {
            "invariant": "codec_roundtrip",
            "detail": f"round-trip changed shape/dtype to {restored.shape}/{restored.dtype}",
        }
    if data.size:
        eb_fn = getattr(codec, "effective_error_bound", None)
        bound = float(eb_fn(data.astype(np.float64))) if eb_fn else float(codec.error_bound)
        slack = 0.0
        if scenario.dtype == "float32":
            # the bound holds in float64; casting back to the caller's
            # float32 adds up to one ulp at the value's own magnitude
            max_abs = float(np.max(np.abs(data.astype(np.float64))))
            slack = float(np.finfo(np.float32).eps) * (max_abs + bound)
        err = float(np.max(np.abs(restored.astype(np.float64) - data.astype(np.float64))))
        if not err <= bound * (1.0 + 1e-9) + slack:
            return {
                "invariant": "codec_roundtrip",
                "detail": f"max round-trip error {err:.6g} exceeds bound {bound:.6g}",
            }
    return None
