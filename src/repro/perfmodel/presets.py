"""Factory functions bundling the calibrated network and cost models.

The experiment harness and the examples always obtain their models through
these helpers so that every figure/table is produced with one consistent
calibration (and so that ablations can swap a single piece).
"""

from __future__ import annotations

from repro.mpisim.network import PROGRESS_ASYNC, NetworkModel
from repro.perfmodel.costmodel import CostModel

__all__ = [
    "default_network",
    "default_cost_model",
    "async_progress_network",
    "line_rate_network",
]


def default_network() -> NetworkModel:
    """The calibrated Omni-Path-like fabric (effective collective bandwidth)."""
    return NetworkModel()


def default_cost_model() -> CostModel:
    """The calibrated Broadwell cost model (Table I throughput regime)."""
    return CostModel.broadwell_omnipath()


def async_progress_network() -> NetworkModel:
    """Ablation: an interconnect with fully asynchronous progress.

    With hardware progress the transfers overlap compression even without the
    PIPE-SZx polling, which isolates how much of C-Coll's gain comes from the
    overlap optimization versus the compress-once data-movement framework.
    """
    base = default_network()
    return NetworkModel(
        latency=base.latency,
        bandwidth=base.bandwidth,
        eager_threshold=base.eager_threshold,
        inflight_window=base.inflight_window,
        progress=PROGRESS_ASYNC,
    )


def line_rate_network() -> NetworkModel:
    """Ablation: the nominal 100 Gbps line rate (12.5 GB/s) with 1 us latency.

    On such a fabric compression cannot pay for itself (the compressors are an
    order of magnitude slower than the wire), which reproduces the regime where
    compression-enabled collectives lose to the originals.
    """
    base = default_network()
    return NetworkModel(
        latency=1e-6,
        bandwidth=12.5e9,
        eager_threshold=base.eager_threshold,
        inflight_window=base.inflight_window,
        progress=base.progress,
    )
