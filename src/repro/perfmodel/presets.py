"""Factory functions bundling the calibrated network and cost models.

The experiment harness and the examples always obtain their models through
these helpers so that every figure/table is produced with one consistent
calibration (and so that ablations can swap a single piece).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mpisim.network import PROGRESS_ASYNC, NetworkModel
from repro.mpisim.topology import (
    DragonflyTopology,
    FatTreeTopology,
    FlatTopology,
    HierarchicalTopology,
    SharedUplinkTopology,
    Topology,
)
from repro.perfmodel.costmodel import CostModel

__all__ = [
    "default_network",
    "default_cost_model",
    "async_progress_network",
    "line_rate_network",
    "TOPOLOGY_PRESETS",
    "flat_topology",
    "two_level_topology",
    "shared_uplink_topology",
    "fat_tree_topology",
    "dragonfly_topology",
    "rail_optimized_fat_tree",
    "make_topology",
]


def default_network() -> NetworkModel:
    """The calibrated Omni-Path-like fabric (effective collective bandwidth)."""
    return NetworkModel()


def default_cost_model() -> CostModel:
    """The calibrated Broadwell cost model (Table I throughput regime)."""
    return CostModel.broadwell_omnipath()


def async_progress_network() -> NetworkModel:
    """Ablation: an interconnect with fully asynchronous progress.

    With hardware progress the transfers overlap compression even without the
    PIPE-SZx polling, which isolates how much of C-Coll's gain comes from the
    overlap optimization versus the compress-once data-movement framework.
    """
    base = default_network()
    return NetworkModel(
        latency=base.latency,
        bandwidth=base.bandwidth,
        eager_threshold=base.eager_threshold,
        inflight_window=base.inflight_window,
        progress=PROGRESS_ASYNC,
    )


def line_rate_network() -> NetworkModel:
    """Ablation: the nominal 100 Gbps line rate (12.5 GB/s) with 1 us latency.

    On such a fabric compression cannot pay for itself (the compressors are an
    order of magnitude slower than the wire), which reproduces the regime where
    compression-enabled collectives lose to the originals.
    """
    base = default_network()
    return NetworkModel(
        latency=1e-6,
        bandwidth=12.5e9,
        eager_threshold=base.eager_threshold,
        inflight_window=base.inflight_window,
        progress=base.progress,
    )


# ------------------------------------------------------------------ topologies


def flat_topology() -> FlatTopology:
    """The paper's placement: one rank per node, uniform calibrated links.

    This is the default everywhere; the engine treats it identically to "no
    topology", so every calibrated figure reproduces bit-for-bit.
    """
    return FlatTopology()


def two_level_topology(
    ranks_per_node: int = 4,
    placement: Optional[Sequence[int]] = None,
) -> HierarchicalTopology:
    """Two-level cluster: fast intra-node links, dedicated inter-node links.

    Intra-node pairs see a shared-memory-class link (12 GB/s, 0.5 us); pairs
    on different nodes see the calibrated Omni-Path fabric (0.55 GB/s, 20 us)
    with no contention between concurrent transfers.  Isolates the placement
    effect from the contention effect.
    """
    net = default_network()
    return HierarchicalTopology(
        ranks_per_node=ranks_per_node,
        placement=placement,
        inter_latency=net.latency,
        inter_bandwidth=net.bandwidth,
    )


def shared_uplink_topology(
    ranks_per_node: int = 4,
    placement: Optional[Sequence[int]] = None,
    inter_bandwidth: Optional[float] = None,
    contention: str = "reservation",
) -> SharedUplinkTopology:
    """Two-level cluster whose per-node uplink is split by concurrent egress.

    Same link parameters as :func:`two_level_topology` (``inter_bandwidth``
    overrides the calibrated uplink rate, e.g. to compare against a fabric
    preset at equal per-node bandwidth), but all inter-node transfers leaving
    one node share that node's single uplink.  ``contention`` picks the
    sharing discipline: the serialising reservation queue (default,
    aggregate-exact for symmetric egress) or max-min fair processor sharing
    (``"fair"``, order-exact for asymmetric mixes).  This is the
    oversubscribed regime where hierarchical / topology-aware collectives
    beat the flat ring.
    """
    net = default_network()
    return SharedUplinkTopology(
        ranks_per_node=ranks_per_node,
        placement=placement,
        inter_latency=net.latency,
        inter_bandwidth=inter_bandwidth if inter_bandwidth is not None else net.bandwidth,
        contention=contention,
    )


def fat_tree_topology(
    k: int = 4,
    ranks_per_node: int = 1,
    oversubscription: float = 1.0,
    nics_per_node: int = 1,
    routing: str = "minimal",
    rail_policy: str = "hash",
    nic_bandwidth: Optional[float] = None,
    placement: Optional[Sequence[int]] = None,
    contention: str = "reservation",
) -> FatTreeTopology:
    """Three-level k-ary fat tree with the calibrated NIC as host injection.

    ``oversubscription`` tapers every inter-switch stage to
    ``nic_bandwidth / oversubscription`` (2.0 gives the classic 2:1 tree where
    overlapping paths between *different* node pairs contend well before the
    NICs saturate); ``nics_per_node``/``rail_policy`` enable multi-rail hosts;
    ``contention`` picks the stage sharing discipline (reservation queue or
    ``"fair"`` max-min processor sharing).
    """
    net = default_network()
    return FatTreeTopology(
        k=k,
        ranks_per_node=ranks_per_node,
        placement=placement,
        oversubscription=oversubscription,
        nics_per_node=nics_per_node,
        routing=routing,
        rail_policy=rail_policy,
        nic_latency=net.latency,
        nic_bandwidth=nic_bandwidth if nic_bandwidth is not None else net.bandwidth,
        contention=contention,
    )


def dragonfly_topology(
    n_groups: int = 4,
    routers_per_group: int = 4,
    nodes_per_router: int = 1,
    ranks_per_node: int = 1,
    oversubscription: float = 1.0,
    nics_per_node: int = 1,
    routing: str = "minimal",
    rail_policy: str = "hash",
    nic_bandwidth: Optional[float] = None,
    placement: Optional[Sequence[int]] = None,
    contention: str = "reservation",
) -> DragonflyTopology:
    """Dragonfly with all-to-all groups and the calibrated NIC as injection.

    Global links taper to ``nic_bandwidth / oversubscription``; pair with
    ``routing="adaptive"`` to let Valiant detours route around a saturated
    global link.  ``contention`` picks the stage sharing discipline
    (reservation queue or ``"fair"`` max-min processor sharing).
    """
    net = default_network()
    return DragonflyTopology(
        n_groups=n_groups,
        routers_per_group=routers_per_group,
        nodes_per_router=nodes_per_router,
        ranks_per_node=ranks_per_node,
        placement=placement,
        oversubscription=oversubscription,
        nics_per_node=nics_per_node,
        routing=routing,
        rail_policy=rail_policy,
        nic_latency=net.latency,
        nic_bandwidth=nic_bandwidth if nic_bandwidth is not None else net.bandwidth,
        contention=contention,
    )


def rail_optimized_fat_tree(
    k: int = 4,
    ranks_per_node: int = 4,
    nics_per_node: int = 2,
    oversubscription: float = 2.0,
    nic_bandwidth: Optional[float] = None,
    contention: str = "reservation",
) -> FatTreeTopology:
    """Multi-rail placement preset: co-located ranks stripe over ``nics_per_node`` rails.

    Models the rail-optimised GPU-pod wiring where each host injects over
    parallel NICs into an oversubscribed tree — the regime in which striping
    recovers the bandwidth the tapered switch tier takes away.
    """
    return fat_tree_topology(
        k=k,
        ranks_per_node=ranks_per_node,
        oversubscription=oversubscription,
        nics_per_node=nics_per_node,
        rail_policy="stripe",
        routing="adaptive",
        nic_bandwidth=nic_bandwidth,
        contention=contention,
    )


#: preset name -> factory accepting (ranks_per_node=...) where applicable
TOPOLOGY_PRESETS = {
    "flat": flat_topology,
    "two_level": two_level_topology,
    "shared_uplink": shared_uplink_topology,
    "fat_tree": fat_tree_topology,
    "dragonfly": dragonfly_topology,
    "rail_fat_tree": rail_optimized_fat_tree,
}


def make_topology(name: str, **kwargs) -> Topology:
    """Instantiate a named topology preset (see :data:`TOPOLOGY_PRESETS`)."""
    key = name.lower()
    if key not in TOPOLOGY_PRESETS:
        raise ValueError(
            f"unknown topology preset {name!r}; available: {', '.join(TOPOLOGY_PRESETS)}"
        )
    if key == "flat" and kwargs:
        raise ValueError(
            "the flat preset pins one rank per node and takes no parameters; "
            f"got {sorted(kwargs)}"
        )
    return TOPOLOGY_PRESETS[key](**kwargs)
