"""Calibrated performance model: cost model, network presets, breakdown labels."""

from repro.mpisim.timeline import (
    CAT_ALLGATHER,
    CAT_COMDECOM,
    CAT_MEMCPY,
    CAT_OTHERS,
    CAT_REDUCTION,
    CAT_WAIT,
    STANDARD_CATEGORIES,
    TimeBreakdown,
)
from repro.perfmodel.costmodel import DEFAULT_CODEC_SPEEDS, CodecSpeed, CostModel
from repro.perfmodel.presets import (
    async_progress_network,
    default_cost_model,
    default_network,
    line_rate_network,
)

__all__ = [
    "CostModel",
    "CodecSpeed",
    "DEFAULT_CODEC_SPEEDS",
    "default_network",
    "default_cost_model",
    "async_progress_network",
    "line_rate_network",
    "TimeBreakdown",
    "STANDARD_CATEGORIES",
    "CAT_COMDECOM",
    "CAT_ALLGATHER",
    "CAT_MEMCPY",
    "CAT_WAIT",
    "CAT_REDUCTION",
    "CAT_OTHERS",
]
