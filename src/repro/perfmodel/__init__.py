"""Calibrated performance model: cost model, network presets, breakdown labels."""

from repro.mpisim.timeline import (
    CAT_ALLGATHER,
    CAT_COMDECOM,
    CAT_MEMCPY,
    CAT_OTHERS,
    CAT_REDUCTION,
    CAT_WAIT,
    STANDARD_CATEGORIES,
    TimeBreakdown,
)
from repro.perfmodel.costmodel import DEFAULT_CODEC_SPEEDS, CodecSpeed, CostModel
from repro.perfmodel.presets import (
    TOPOLOGY_PRESETS,
    async_progress_network,
    default_cost_model,
    default_network,
    flat_topology,
    line_rate_network,
    make_topology,
    shared_uplink_topology,
    two_level_topology,
)

__all__ = [
    "CostModel",
    "CodecSpeed",
    "DEFAULT_CODEC_SPEEDS",
    "default_network",
    "default_cost_model",
    "async_progress_network",
    "line_rate_network",
    "TOPOLOGY_PRESETS",
    "flat_topology",
    "two_level_topology",
    "shared_uplink_topology",
    "make_topology",
    "TimeBreakdown",
    "STANDARD_CATEGORIES",
    "CAT_COMDECOM",
    "CAT_ALLGATHER",
    "CAT_MEMCPY",
    "CAT_WAIT",
    "CAT_REDUCTION",
    "CAT_OTHERS",
]
