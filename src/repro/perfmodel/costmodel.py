"""Calibrated cost model for the simulated cluster.

The discrete-event engine only understands durations; this module is where
those durations come from.  All values are calibrated against the paper's
measurements on the Bebop cluster (two-socket Intel Xeon E5-2695v4 "Broadwell"
nodes, Intel Omni-Path 100 Gbps fabric, MPICH 4.1.1, one rank per node):

* **Compression/decompression throughput** follows Table I: SZx compresses at
  roughly 0.5-1.7 GB/s and decompresses at 0.8-3.6 GB/s depending on how
  compressible the data is; ZFP(ABS) is 2-5x slower, ZFP(FXR) slower still.
  The model exposes a base throughput per codec plus an optional
  ratio-dependent speed-up (constant/zero blocks are cheaper to encode, which
  is exactly why Table I's throughput grows with the error bound).
* **Network**: the headline 100 Gbps (12.5 GB/s) link rate is *not* what a
  ring collective sees at the application level once protocol overheads,
  message-rate limits and fabric sharing across 16-128 busy nodes are paid.
  Working backwards from the paper's relative results — C-Allreduce is bounded
  below by roughly one SZx compression pass plus two decompression passes over
  the data (~1.2 s for 678 MB at Table I's throughputs) and still beats the
  uncompressed Allreduce by 2.1-2.5x, while the CPR-P2P variants (which add
  one more compression pass plus buffer-management overhead) *lose* to it —
  the effective per-rank bandwidth during the collectives must have been
  around 0.5 GB/s; the default network model therefore uses 0.55 GB/s with a
  20 us latency.  This calibration is what the performance figures' *shapes*
  rest on; absolute times are not comparable to the paper's cluster.
* **Memcpy / reduction bandwidth**: single-core Broadwell copy and streaming
  add rates (~8 GB/s and ~5 GB/s).
* **Buffer management**: the paper's Figure 7 attributes a sizeable "Others"
  share in the direct SZx integration to allocating/freeing the compressor's
  output buffers on every call; ``alloc_seconds`` models a first-touch cost so
  that effect is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.utils.validation import ensure_positive

__all__ = ["CostModel", "CodecSpeed", "DEFAULT_CODEC_SPEEDS", "DEFAULT_BREAK_EVEN_RATIO"]

#: 1 MB/s in bytes/second
_MB = 1e6

#: compression ratio assumed by the break-even bandwidth estimate when the
#: caller has not seen the data yet (RTM/CESM float fields at the paper's
#: error bounds typically compress 15-30x)
DEFAULT_BREAK_EVEN_RATIO = 16.0


@dataclass(frozen=True)
class CodecSpeed:
    """Base (de)compression throughput of one codec, in bytes of *uncompressed*
    data per second (the convention of the paper's Table I)."""

    compress_bps: float
    decompress_bps: float


#: calibrated against Table I (values are bytes of uncompressed data per second):
#: SZx compresses at ~0.5-1.7 GB/s and decompresses at ~0.8-3.6 GB/s depending on
#: data and bound (the ratio-dependent speed-up covers the spread); ZFP(ABS) is
#: roughly 2-5x slower and ZFP(FXR) slower still.  SZx's decompression being ~3x
#: faster than its compression (as in Table I) is what lets C-Allreduce — whose
#: critical path is roughly one compression plus two decompression passes over
#: the data — beat the uncompressed Allreduce, while the CPR-P2P variants (two
#: compression passes plus per-call buffer management) lose to it.
DEFAULT_CODEC_SPEEDS: Dict[str, CodecSpeed] = {
    "szx": CodecSpeed(compress_bps=1000 * _MB, decompress_bps=3300 * _MB),
    "pipe_szx": CodecSpeed(compress_bps=950 * _MB, decompress_bps=3000 * _MB),
    "zfp_abs": CodecSpeed(compress_bps=600 * _MB, decompress_bps=700 * _MB),
    "zfp_fxr": CodecSpeed(compress_bps=300 * _MB, decompress_bps=320 * _MB),
    "null": CodecSpeed(compress_bps=8000 * _MB, decompress_bps=8000 * _MB),
}


@dataclass(frozen=True)
class CostModel:
    """Durations of the modelled on-node operations.

    Parameters
    ----------
    codec_speeds:
        Base throughput per codec name (see :data:`DEFAULT_CODEC_SPEEDS`).
    ratio_speedup:
        When True, codec throughput additionally scales with the achieved
        compression ratio (``(ratio / 8) ** ratio_exponent`` clamped to
        ``ratio_speedup_range``), reproducing Table I's trend of faster
        compression at looser bounds.
    memcpy_bandwidth / reduction_bandwidth:
        Streaming copy / element-wise add rates in bytes/second.
    alloc_bandwidth:
        First-touch allocation rate (bytes/second) used for temporary buffers.
    compressor_buffer_bandwidth:
        Rate (bytes/second) charged for allocating *and freeing* a
        compressor's output buffer around every call.  The reference SZx API
        makes the caller free a freshly allocated buffer after each call, and
        the paper measures this as a large "Others" share of the direct
        integration (Figure 7); C-Coll avoids it by reusing pre-allocated
        buffers, so only the CPR-P2P code paths charge this cost.
    call_overhead:
        Fixed per-call overhead (seconds) for a compressor invocation.
    """

    codec_speeds: Dict[str, CodecSpeed] = field(
        default_factory=lambda: dict(DEFAULT_CODEC_SPEEDS)
    )
    ratio_speedup: bool = True
    ratio_exponent: float = 0.3
    ratio_speedup_range: Tuple[float, float] = (0.6, 1.8)
    memcpy_bandwidth: float = 8.0e9
    reduction_bandwidth: float = 5.0e9
    alloc_bandwidth: float = 12.0e9
    compressor_buffer_bandwidth: float = 2.2e9
    call_overhead: float = 3e-6

    def __post_init__(self) -> None:
        ensure_positive(self.memcpy_bandwidth, "memcpy_bandwidth")
        ensure_positive(self.reduction_bandwidth, "reduction_bandwidth")
        ensure_positive(self.alloc_bandwidth, "alloc_bandwidth")

    # ------------------------------------------------------------- factories

    @classmethod
    def broadwell_omnipath(cls) -> "CostModel":
        """The default calibration described in the module docstring."""
        return cls()

    @classmethod
    def uniform(cls, compress_bps: float, decompress_bps: float, **kwargs) -> "CostModel":
        """A cost model where every codec shares the same throughput (for ablations)."""
        speeds = {name: CodecSpeed(compress_bps, decompress_bps) for name in DEFAULT_CODEC_SPEEDS}
        return cls(codec_speeds=speeds, **kwargs)

    # ------------------------------------------------------------ codec costs

    def _codec_name(self, codec: Union[str, object]) -> str:
        name = codec if isinstance(codec, str) else getattr(codec, "name", None)
        if not isinstance(name, str):
            raise TypeError(f"codec must be a name or a Compressor, got {codec!r}")
        return name.lower()

    def _speed(self, codec: Union[str, object]) -> CodecSpeed:
        name = self._codec_name(codec)
        if name not in self.codec_speeds:
            raise KeyError(
                f"no calibrated speed for codec {name!r}; known: {sorted(self.codec_speeds)}"
            )
        return self.codec_speeds[name]

    def _ratio_factor(self, ratio: Optional[float]) -> float:
        if not self.ratio_speedup or ratio is None or ratio <= 0:
            return 1.0
        lo, hi = self.ratio_speedup_range
        return float(min(hi, max(lo, math.pow(ratio / 8.0, self.ratio_exponent))))

    def compress_seconds(
        self, codec: Union[str, object], nbytes: float, ratio: Optional[float] = None
    ) -> float:
        """Time to compress ``nbytes`` of uncompressed data with ``codec``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        speed = self._speed(codec)
        return self.call_overhead + nbytes / (speed.compress_bps * self._ratio_factor(ratio))

    def decompress_seconds(
        self, codec: Union[str, object], nbytes: float, ratio: Optional[float] = None
    ) -> float:
        """Time to reconstruct ``nbytes`` of uncompressed data with ``codec``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        speed = self._speed(codec)
        return self.call_overhead + nbytes / (speed.decompress_bps * self._ratio_factor(ratio))

    def codec_break_even_bandwidth(
        self, codec: Union[str, object], expected_ratio: float = DEFAULT_BREAK_EVEN_RATIO
    ) -> float:
        """Wire bandwidth (bytes/s) below which compressing beats raw transfer.

        The topology-aware C-Allreduce's critical path per inter-node byte is
        roughly one compression plus two decompressions (reduce-scatter hop +
        allgather reconstruction); compression saves ``(1 - 1/ratio)`` of the
        wire time.  Solving ``saved wire time > codec time`` for the bandwidth
        gives the break-even point.  ``expected_ratio`` is the anticipated
        compression ratio (the ratio-dependent codec speed-up is applied to it
        as in :meth:`compress_seconds`); scientific float fields at the
        paper's bounds typically land in the 15-30x range.
        """
        ensure_positive(expected_ratio, "expected_ratio")
        speed = self._speed(codec)
        factor = self._ratio_factor(expected_ratio)
        codec_seconds_per_byte = 1.0 / (speed.compress_bps * factor) + 2.0 / (
            speed.decompress_bps * factor
        )
        saved_fraction = 1.0 - 1.0 / expected_ratio
        return saved_fraction / codec_seconds_per_byte

    # ------------------------------------------------------------ local costs

    def memcpy_seconds(self, nbytes: float) -> float:
        """Time to copy ``nbytes`` between local buffers."""
        return max(0.0, nbytes) / self.memcpy_bandwidth

    def reduce_seconds(self, nbytes: float) -> float:
        """Time for an element-wise reduction over ``nbytes`` of operands."""
        return max(0.0, nbytes) / self.reduction_bandwidth

    def alloc_seconds(self, nbytes: float) -> float:
        """Time to allocate/first-touch a temporary buffer of ``nbytes``."""
        return self.call_overhead + max(0.0, nbytes) / self.alloc_bandwidth

    def compressor_buffer_seconds(self, nbytes: float) -> float:
        """Per-call cost of allocating and freeing a compressor output buffer."""
        return self.call_overhead + max(0.0, nbytes) / self.compressor_buffer_bandwidth

    def with_codec_speed(
        self, codec: str, compress_bps: float, decompress_bps: float
    ) -> "CostModel":
        """Return a copy of the model with one codec's throughput replaced."""
        speeds = dict(self.codec_speeds)
        speeds[codec.lower()] = CodecSpeed(compress_bps, decompress_bps)
        return CostModel(
            codec_speeds=speeds,
            ratio_speedup=self.ratio_speedup,
            ratio_exponent=self.ratio_exponent,
            ratio_speedup_range=self.ratio_speedup_range,
            memcpy_bandwidth=self.memcpy_bandwidth,
            reduction_bandwidth=self.reduction_bandwidth,
            alloc_bandwidth=self.alloc_bandwidth,
            compressor_buffer_bandwidth=self.compressor_buffer_bandwidth,
            call_overhead=self.call_overhead,
        )
