"""Typed, seeded fault schedules for the simulated fabric.

A :class:`FaultSchedule` is an immutable, time-sorted list of typed fault
events — the scenario script a :class:`~repro.faults.injector.FaultInjector`
replays through ``Engine.schedule_event`` so faults interleave
deterministically with the engine's ``(timestamp, priority, token)`` heap.
The event types cover the taxonomy in the ROADMAP's failure-scenarios item:

* :class:`LinkDegrade` — a stage family (or a single stage) runs at a
  fraction of nominal capacity; with ``duration`` set it is a *flap* that
  restores itself.
* :class:`RailFailure` — one NIC rail of one node stops accepting new
  messages (``resolve_link`` re-routes onto the surviving rails); optionally
  self-healing via ``duration``.
* :class:`SlowRank` — one rank's compute slows by a factor (straggler);
  optionally transient.
* :class:`NodeLoss` — a node goes dark mid-run: its NIC stages collapse to a
  retransmit-class trickle and the workload layer stops placing jobs on it
  (and kills/restarts the jobs already there, per their failure policy).
* :class:`DomainOutage` — a correlated failure: one event over a
  :class:`FailureDomain` (switch, pod, power zone) expands into
  ``NodeLoss``/``RailFailure``/``LinkDegrade`` constituents for every member,
  all at the same timestamp.

Schedules are plain data: they sort, compare, round-trip through
``to_dicts``/``from_dicts`` (JSON-friendly), and :meth:`FaultSchedule.generate`
derives a named *fault mix* from a seed, so one ``(mix, seed)`` pair names a
reproducible scenario everywhere — the harness ``faults`` experiment, the
workload CLI and the fuzzer all share it.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DRAGONFLY_LINK_FAMILIES",
    "FAT_TREE_LINK_FAMILIES",
    "FAULT_MIXES",
    "DomainOutage",
    "FailureDomain",
    "FaultEvent",
    "FaultSchedule",
    "LinkDegrade",
    "NodeLoss",
    "RailFailure",
    "SlowRank",
]

#: named fault mixes understood by :meth:`FaultSchedule.generate`
#: (``domain_outage`` appended last so pre-existing seeded draws reproduce)
FAULT_MIXES = (
    "none",
    "degraded_tier",
    "flaky_links",
    "stragglers",
    "rail_outage",
    "node_loss",
    "mixed",
    "domain_outage",
)

#: default stage families LinkDegrade mixes draw from (a fat tree's switch
#: tier); dragonfly callers pass ``link_families=DRAGONFLY_LINK_FAMILIES``
FAT_TREE_LINK_FAMILIES = ("ft-up", "ft-down", "ft-agg-core", "ft-core-agg")

#: the dragonfly fabric's degradable stage families
DRAGONFLY_LINK_FAMILIES = ("df-local", "df-global")


def _check_time(time: float) -> None:
    if not time >= 0.0:
        raise ValueError(f"fault event time must be >= 0, got {time}")


def _check_duration(duration: Optional[float]) -> None:
    if duration is not None and not duration > 0.0:
        raise ValueError(f"fault duration must be > 0 (or None), got {duration}")


@dataclass(frozen=True)
class LinkDegrade:
    """Stages under ``stage_prefix`` run at ``factor`` of nominal capacity.

    ``stage_prefix`` is a stage-id prefix as understood by
    ``SwitchFabricTopology.set_stage_fault`` — ``("ft-agg-core",)`` degrades a
    whole tier, ``("nic-up", 3)`` one node's injection rails.  ``duration``
    turns the degradation into a flap that clears after that many seconds.
    """

    time: float
    stage_prefix: Tuple
    factor: float
    duration: Optional[float] = None
    kind: str = "link_degrade"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_duration(self.duration)
        object.__setattr__(self, "stage_prefix", tuple(self.stage_prefix))
        if not self.stage_prefix:
            raise ValueError("LinkDegrade needs a non-empty stage prefix")
        if not self.factor > 0.0:
            raise ValueError(f"degradation factor must be > 0, got {self.factor}")


@dataclass(frozen=True)
class RailFailure:
    """NIC rail ``rail`` of ``node`` fails: new messages route around it.

    Routing-level only — in-flight transfers drain at their reserved rates
    (link-level retransmission finishes what already entered the wire); the
    next ``resolve_link`` on that node advances deterministically to the next
    live rail.  ``duration`` makes the failure self-healing.
    """

    time: float
    node: int
    rail: int
    duration: Optional[float] = None
    kind: str = "rail_failure"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_duration(self.duration)
        if self.node < 0 or self.rail < 0:
            raise ValueError("RailFailure node and rail must be >= 0")


@dataclass(frozen=True)
class SlowRank:
    """Rank ``rank``'s compute takes ``factor`` times as long (straggler).

    ``factor > 1`` slows the rank; ``duration`` restores it to modelled speed
    after that many seconds.
    """

    time: float
    rank: int
    factor: float
    duration: Optional[float] = None
    kind: str = "slow_rank"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_duration(self.duration)
        if self.rank < 0:
            raise ValueError(f"SlowRank rank must be >= 0, got {self.rank}")
        if not self.factor > 0.0:
            raise ValueError(f"compute factor must be > 0, got {self.factor}")


@dataclass(frozen=True)
class NodeLoss:
    """Node ``node`` goes dark at ``time``.

    The node's NIC stages collapse to retransmit-class rates and the
    workload layer quarantines the node (killing jobs placed on it, per
    their :class:`~repro.workload.recovery.FailurePolicy`).  ``duration``
    makes the loss transient: the overlays clear and the node is healed
    (un-quarantined) after that many seconds; ``None`` is permanent.
    """

    time: float
    node: int
    duration: Optional[float] = None
    kind: str = "node_loss"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_duration(self.duration)
        if self.node < 0:
            raise ValueError(f"NodeLoss node must be >= 0, got {self.node}")


@dataclass(frozen=True)
class FailureDomain:
    """A named group of components that fail together.

    ``kind`` labels the blast radius ("switch", "pod", "power", ...);
    members are ``nodes`` (lost outright), ``rails`` as ``(node, rail)``
    pairs, and ``stage_prefixes`` (degraded to
    :attr:`DomainOutage.degrade_factor`).  A domain is pure data — it only
    acts through a :class:`DomainOutage` event that expands over it.
    """

    name: str
    kind: str = "switch"
    nodes: Tuple[int, ...] = ()
    rails: Tuple[Tuple[int, int], ...] = ()
    stage_prefixes: Tuple[Tuple, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("FailureDomain needs a non-empty name")
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))
        object.__setattr__(
            self, "rails", tuple(tuple(pair) for pair in self.rails)
        )
        object.__setattr__(
            self,
            "stage_prefixes",
            tuple(tuple(prefix) for prefix in self.stage_prefixes),
        )
        if not (self.nodes or self.rails or self.stage_prefixes):
            raise ValueError(f"FailureDomain {self.name!r} has no members")
        if any(n < 0 for n in self.nodes):
            raise ValueError("FailureDomain nodes must be >= 0")
        if any(len(pair) != 2 for pair in self.rails):
            raise ValueError("FailureDomain rails must be (node, rail) pairs")
        if any(not prefix for prefix in self.stage_prefixes):
            raise ValueError("FailureDomain stage prefixes must be non-empty")


@dataclass(frozen=True)
class DomainOutage:
    """Every member of ``domain`` fails at once (correlated failure).

    One seeded event standing for a whole switch / pod / power-zone outage:
    it expands (see :meth:`expand`) into one :class:`NodeLoss` per member
    node, one :class:`RailFailure` per member rail and one
    :class:`LinkDegrade` (at ``degrade_factor``) per member stage prefix,
    all at the same timestamp — so the constituents replay through the
    existing priority-tier ``-1`` path and interleave deterministically.
    ``duration`` (applied to every constituent) makes the outage heal.
    """

    time: float
    domain: FailureDomain
    duration: Optional[float] = None
    degrade_factor: float = 1e-3
    kind: str = "domain_outage"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_duration(self.duration)
        if not isinstance(self.domain, FailureDomain):
            raise ValueError(
                f"DomainOutage domain must be a FailureDomain, "
                f"got {type(self.domain).__name__}"
            )
        if not self.degrade_factor > 0.0:
            raise ValueError(
                f"degrade factor must be > 0, got {self.degrade_factor}"
            )

    def expand(self) -> Tuple[FaultEvent, ...]:
        """The correlated constituent events, one per domain member."""
        events: List[FaultEvent] = []
        for prefix in self.domain.stage_prefixes:
            events.append(
                LinkDegrade(
                    time=self.time,
                    stage_prefix=prefix,
                    factor=self.degrade_factor,
                    duration=self.duration,
                )
            )
        for node, rail in self.domain.rails:
            events.append(
                RailFailure(
                    time=self.time, node=node, rail=rail, duration=self.duration
                )
            )
        for node in self.domain.nodes:
            events.append(
                NodeLoss(time=self.time, node=node, duration=self.duration)
            )
        return tuple(events)


FaultEvent = Any  # union of the event dataclasses above (kept duck-typed)

_EVENT_TYPES = {
    "link_degrade": LinkDegrade,
    "rail_failure": RailFailure,
    "slow_rank": SlowRank,
    "node_loss": NodeLoss,
    "domain_outage": DomainOutage,
}


def _event_key(event: FaultEvent) -> Tuple[float, str, str]:
    # (time, kind, field repr): a total order so equal-time events of mixed
    # types sort identically everywhere, which is what makes schedule
    # construction independent of the order events were listed in
    return (event.time, event.kind, repr(event))


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted scenario of typed fault events.

    Construction sorts the events by ``(time, kind, fields)``, so two
    schedules with the same events compare equal regardless of listing
    order.  The empty schedule is the explicit "no faults" scenario: a
    :class:`~repro.faults.injector.FaultInjector` given one schedules
    nothing, leaving every golden makespan bit-for-bit unchanged.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=_event_key))
        )

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-friendly representation (round-trips through :meth:`from_dicts`)."""
        out = []
        for event in self.events:
            payload = asdict(event)
            if "stage_prefix" in payload:
                payload["stage_prefix"] = list(payload["stage_prefix"])
            if "domain" in payload:
                domain = payload["domain"]
                domain["nodes"] = list(domain["nodes"])
                domain["rails"] = [list(pair) for pair in domain["rails"]]
                domain["stage_prefixes"] = [
                    list(prefix) for prefix in domain["stage_prefixes"]
                ]
            out.append(payload)
        return out

    @classmethod
    def from_dicts(cls, payloads: Iterable[Dict[str, Any]]) -> "FaultSchedule":
        events = []
        for payload in payloads:
            payload = dict(payload)
            kind = payload.pop("kind", None)
            event_type = _EVENT_TYPES.get(kind)
            if event_type is None:
                raise ValueError(
                    f"unknown fault event kind {kind!r}; "
                    f"available: {', '.join(_EVENT_TYPES)}"
                )
            if "stage_prefix" in payload:
                payload["stage_prefix"] = tuple(payload["stage_prefix"])
            if "domain" in payload:
                payload["domain"] = FailureDomain(**payload["domain"])
            events.append(event_type(**payload))
        return cls(events=tuple(events))

    def permanent_node_losses(self) -> frozenset:
        """Nodes permanently lost by this schedule (domain outages expanded).

        Transient losses (``duration`` set) heal, so they do not count — the
        workload fit precheck only refuses jobs that could *never* be placed.
        """
        lost = set()
        for event in self.events:
            constituents = (
                event.expand() if isinstance(event, DomainOutage) else (event,)
            )
            for member in constituents:
                if isinstance(member, NodeLoss) and member.duration is None:
                    lost.add(member.node)
        return frozenset(lost)

    @classmethod
    def generate(
        cls,
        mix: str,
        seed: int,
        *,
        n_nodes: int,
        n_ranks: Optional[int] = None,
        nics_per_node: int = 1,
        horizon: float = 2e-3,
        link_families: Sequence[str] = FAT_TREE_LINK_FAMILIES,
    ) -> "FaultSchedule":
        """A seeded instance of a named fault mix.

        ``horizon`` scales every event time (faults land in the first ~70% of
        it, so a run of roughly that makespan actually experiences them);
        ``link_families`` names the switch-tier stage families degradations
        draw from.  ``(mix, seed)`` fully determines the result.  Mixes:

        * ``none`` — the empty schedule.
        * ``degraded_tier`` — one persistent tier-wide degradation.
        * ``flaky_links`` — two to three transient flaps on distinct families.
        * ``stragglers`` — one or two slow ranks, possibly transient.
        * ``rail_outage`` — one NIC rail failure (needs ``nics_per_node >= 2``).
        * ``node_loss`` — one node goes dark mid-run.
        * ``mixed`` — a degraded tier plus a straggler.
        * ``domain_outage`` — a correlated power-zone outage: a contiguous
          block of nodes fails together (transient about half the time).
        """
        if mix not in FAULT_MIXES:
            raise ValueError(
                f"unknown fault mix {mix!r}; available: {', '.join(FAULT_MIXES)}"
            )
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if not horizon > 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if mix == "none":
            return cls()
        families = tuple(link_families)
        n_ranks = int(n_ranks) if n_ranks is not None else int(n_nodes)
        rng = random.Random(f"repro.faults:{mix}:{seed}")
        events: List[FaultEvent] = []

        def degraded_tier() -> None:
            events.append(
                LinkDegrade(
                    time=rng.uniform(0.1, 0.3) * horizon,
                    stage_prefix=(rng.choice(families),),
                    factor=rng.uniform(0.15, 0.5),
                )
            )

        def straggler() -> None:
            events.append(
                SlowRank(
                    time=rng.uniform(0.0, 0.4) * horizon,
                    rank=rng.randrange(n_ranks),
                    factor=rng.uniform(1.5, 4.0),
                    duration=(
                        rng.uniform(0.2, 0.5) * horizon if rng.random() < 0.5 else None
                    ),
                )
            )

        if mix == "degraded_tier":
            degraded_tier()
        elif mix == "flaky_links":
            count = min(rng.randint(2, 3), len(families))
            for family in rng.sample(families, count):
                events.append(
                    LinkDegrade(
                        time=rng.uniform(0.05, 0.5) * horizon,
                        stage_prefix=(family,),
                        factor=rng.uniform(0.2, 0.6),
                        duration=rng.uniform(0.1, 0.25) * horizon,
                    )
                )
        elif mix == "stragglers":
            for _ in range(rng.randint(1, 2)):
                straggler()
        elif mix == "rail_outage":
            if nics_per_node < 2:
                raise ValueError(
                    "the rail_outage mix needs nics_per_node >= 2 "
                    "(a single-rail node would lose all connectivity)"
                )
            events.append(
                RailFailure(
                    time=rng.uniform(0.1, 0.4) * horizon,
                    node=rng.randrange(n_nodes),
                    rail=rng.randrange(nics_per_node),
                )
            )
        elif mix == "node_loss":
            events.append(
                NodeLoss(
                    time=rng.uniform(0.3, 0.6) * horizon,
                    node=rng.randrange(n_nodes),
                )
            )
        elif mix == "domain_outage":
            span = 2 if n_nodes >= 4 else 1
            start = rng.randrange(n_nodes - span + 1)
            domain = FailureDomain(
                name=f"power-zone-{start}",
                kind="power",
                nodes=tuple(range(start, start + span)),
            )
            events.append(
                DomainOutage(
                    time=rng.uniform(0.3, 0.6) * horizon,
                    domain=domain,
                    duration=(
                        rng.uniform(0.3, 0.6) * horizon
                        if rng.random() < 0.5
                        else None
                    ),
                )
            )
        else:  # mixed
            degraded_tier()
            straggler()
        return cls(events=tuple(events))

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.empty:
            return "fault schedule: empty"
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        parts = ", ".join(f"{n}x {kind}" for kind, n in sorted(kinds.items()))
        return f"fault schedule: {len(self.events)} event(s) ({parts})"
