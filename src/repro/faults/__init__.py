"""Seeded fault injection for the simulated fabric (see README.md here).

Typed fault events (:class:`LinkDegrade`, :class:`RailFailure`,
:class:`SlowRank`, :class:`NodeLoss`, and the correlated
:class:`DomainOutage` over a :class:`FailureDomain`) collected into a
time-sorted :class:`FaultSchedule`, replayed into a live engine by
:class:`FaultInjector` through ``Engine.schedule_event`` so faults
interleave deterministically with the event heap.  An empty schedule
changes nothing, bit-for-bit.
"""

from repro.faults.injector import NODE_LOSS_FACTOR, FaultInjector
from repro.faults.schedule import (
    DRAGONFLY_LINK_FAMILIES,
    FAT_TREE_LINK_FAMILIES,
    FAULT_MIXES,
    DomainOutage,
    FailureDomain,
    FaultEvent,
    FaultSchedule,
    LinkDegrade,
    NodeLoss,
    RailFailure,
    SlowRank,
)

__all__ = [
    "DRAGONFLY_LINK_FAMILIES",
    "FAT_TREE_LINK_FAMILIES",
    "FAULT_MIXES",
    "NODE_LOSS_FACTOR",
    "DomainOutage",
    "FailureDomain",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkDegrade",
    "NodeLoss",
    "RailFailure",
    "SlowRank",
]
