"""Seeded fault injection for the simulated fabric (see README.md here).

Typed fault events (:class:`LinkDegrade`, :class:`RailFailure`,
:class:`SlowRank`, :class:`NodeLoss`) collected into a time-sorted
:class:`FaultSchedule`, replayed into a live engine by
:class:`FaultInjector` through ``Engine.schedule_event`` so faults
interleave deterministically with the event heap.  An empty schedule
changes nothing, bit-for-bit.
"""

from repro.faults.injector import NODE_LOSS_FACTOR, FaultInjector
from repro.faults.schedule import (
    DRAGONFLY_LINK_FAMILIES,
    FAT_TREE_LINK_FAMILIES,
    FAULT_MIXES,
    FaultEvent,
    FaultSchedule,
    LinkDegrade,
    NodeLoss,
    RailFailure,
    SlowRank,
)

__all__ = [
    "DRAGONFLY_LINK_FAMILIES",
    "FAT_TREE_LINK_FAMILIES",
    "FAULT_MIXES",
    "NODE_LOSS_FACTOR",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkDegrade",
    "NodeLoss",
    "RailFailure",
    "SlowRank",
]
