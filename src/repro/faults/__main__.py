"""``python -m repro.faults`` — seeded fault-injection smoke checks.

``smoke`` runs the checks the CI faults lane gates on:

1. **empty-schedule drift** — a :class:`~repro.faults.FaultSchedule` with no
   events must leave the workload makespan bit-for-bit identical to a run
   without any injector, in both contention modes;
2. **per-mix determinism + invariants** — every named fault mix runs the
   same seeded job mix twice; the two runs must agree bit-for-bit, and each
   run is audited for stage capacity conservation (against reserve-time
   capacities, so mid-run degradations are handled) and the max-min fair
   bottleneck property.

Exits non-zero on any violation or drift.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import Cluster
from repro.faults.schedule import FAULT_MIXES, FaultSchedule
from repro.workload import JobMix, WorkloadEngine


def _build(contention: str, seed: int) -> tuple:
    cluster = Cluster.from_preset(
        "fat_tree", nodes=8, ranks_per_node=2, nics_per_node=2,
        contention=contention,
    )
    # >= 8 ranks -> >= 4 nodes -> spans edge switches, so switch-tier faults
    # genuinely intersect tenant traffic (2 nodes would stay leaf-local)
    mix = JobMix(n_jobs=4, arrival_rate=900.0, sizes=(8, 16))
    return cluster, mix.generate(seed)


def _run(cluster, specs, seed: int, faults, audit: bool):
    """One simulation; returns (makespan, finishes, violations)."""
    engine = WorkloadEngine(cluster, policy="packed", seed=seed, faults=faults)
    if not audit:
        report = engine.run(specs, baseline=False)
        violations: List = []
    else:
        from repro.fuzzer.executor import trace_fair_allocations
        from repro.mpisim.topology import (
            capacity_conservation_violations,
            trace_reservations,
        )

        with trace_reservations() as events, trace_fair_allocations() as fair:
            report = engine.run(specs, baseline=False)
        violations = [
            ("capacity", f"stage overlap at t={begin:.9f}")
            for _, begin, _ in capacity_conservation_violations(events)
        ] + list(fair)
    finishes = tuple(record.finished for record in report.records)
    return report.makespan, finishes, violations


def cmd_smoke(args: argparse.Namespace) -> int:
    failures: List[str] = []
    seed = args.seed

    for contention in ("fair", "reservation"):
        cluster, specs = _build(contention, seed)
        base_mk, base_fin, _ = _run(cluster, specs, seed, None, audit=False)
        empty_mk, empty_fin, _ = _run(
            cluster, specs, seed, FaultSchedule(), audit=False
        )
        if base_mk != empty_mk or base_fin != empty_fin:
            failures.append(
                f"empty-schedule drift under contention={contention}: "
                f"{base_mk!r} != {empty_mk!r}"
            )
        else:
            print(f"ok empty-schedule pin   contention={contention} "
                  f"makespan={base_mk * 1e3:.3f}ms")

    cluster, specs = _build("fair", seed)
    n_fabric = int(cluster.topology.n_fabric_nodes)
    for mix_name in args.mixes:
        schedule = FaultSchedule.generate(
            mix_name, seed, n_nodes=8, n_ranks=16, nics_per_node=2,
            horizon=6e-3,
        )
        first = _run(cluster, specs, seed, schedule, audit=True)
        second = _run(cluster, specs, seed, schedule, audit=True)
        mk, fin, violations = first
        if (mk, fin) != second[:2]:
            failures.append(
                f"mix {mix_name!r} not deterministic: {mk!r} != {second[0]!r}"
            )
        for run_no, (_, _, viol) in enumerate((first, second)):
            for kind, detail in viol:
                failures.append(f"mix {mix_name!r} run {run_no}: [{kind}] {detail}")
        status = "ok" if (mk, fin) == second[:2] and not violations else "FAIL"
        print(f"{status} mix={mix_name:14s} events={len(schedule)} "
              f"makespan={mk * 1e3:.3f}ms (fabric {n_fabric} nodes)")

    if failures:
        print(f"FAULT SMOKE FAILURES ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("fault smoke ok: empty-schedule pins + per-mix determinism + invariants")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="fault-injection smoke checks (CI lane)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    smoke = sub.add_parser("smoke", help="run the CI fault smoke checks")
    smoke.add_argument("--seed", type=int, default=7, help="seed (default: 7)")
    smoke.add_argument(
        "--mixes", nargs="*",
        default=[m for m in FAULT_MIXES if m != "none"],
        choices=FAULT_MIXES,
        help="fault mixes to exercise (default: every non-empty mix)",
    )
    smoke.set_defaults(func=cmd_smoke)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
