"""Replays a :class:`~repro.faults.schedule.FaultSchedule` into a live engine.

The injector turns each typed fault event into one or two
``Engine.schedule_event`` callbacks (the second is the restore half of a
transient fault).  Scheduled callbacks occupy priority tier ``-1`` in the
engine's ``(timestamp, priority, token)`` heap, so a fault due at ``t``
commits before any fair-share departure or rank step at ``t`` — faults
interleave with the simulation exactly as deterministically as arrivals do,
and replaying the same schedule on the same scenario reproduces every
makespan bit-for-bit.

Fair-share plumbing is automatic: whenever a capacity change touches stages
carrying live fluid flows, the injector hands those stages to
``FairShareRegistry.apply_capacity_change``, so in-flight transfers in
``contention="fair"`` mode genuinely see mid-flight rate changes.

An empty schedule schedules nothing and leaves the engine byte-identical to
an uninjected one — the empty-schedule golden-pin contract.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.faults.schedule import (
    DomainOutage,
    FaultSchedule,
    LinkDegrade,
    NodeLoss,
    RailFailure,
    SlowRank,
)

__all__ = ["FaultInjector"]

#: capacity factor a lost node's NIC stages collapse to: traffic drains at
#: retransmit-class rates instead of deadlocking mid-collective ranks
NODE_LOSS_FACTOR = 1e-3


class FaultInjector:
    """Schedules a fault scenario onto one engine run.

    Parameters
    ----------
    schedule:
        The :class:`FaultSchedule` to replay.
    on_node_loss:
        Optional ``(node, time)`` callback fired when a :class:`NodeLoss`
        event lands — the workload layer hooks its allocator's quarantine
        (and job-kill semantics) here so no later job is placed on the dead
        node.
    on_node_heal:
        Optional ``(node, time)`` callback fired when a *transient*
        :class:`NodeLoss` heals (its ``duration`` elapsed) — the workload
        layer un-quarantines the node here so flapping domains return
        capacity.
    node_loss_factor:
        Capacity factor the lost node's NIC stages collapse to.

    ``install(engine)`` must be called after the engine is constructed (or
    reset) and before ``run()``; engine resets clear scheduled events and
    fault overlays, so each run needs a fresh ``install``.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        on_node_loss: Optional[Callable[[int, float], None]] = None,
        on_node_heal: Optional[Callable[[int, float], None]] = None,
        node_loss_factor: float = NODE_LOSS_FACTOR,
    ) -> None:
        if not node_loss_factor > 0.0:
            raise ValueError(
                f"node_loss_factor must be > 0, got {node_loss_factor}"
            )
        self.schedule = schedule
        self.on_node_loss = on_node_loss
        self.on_node_heal = on_node_heal
        self.node_loss_factor = float(node_loss_factor)

    def install(self, engine) -> int:
        """Schedule every event of the schedule onto ``engine``.

        Returns the number of engine callbacks scheduled (restore halves of
        transient faults count separately).  An empty schedule makes zero
        ``schedule_event`` calls and leaves the engine untouched.
        """
        events = self.schedule.events
        if not events:
            return 0
        topology = engine.topology
        if any(not isinstance(ev, SlowRank) for ev in events) and not hasattr(
            topology, "set_stage_fault"
        ):
            raise TypeError(
                f"link/rail/node fault events need a switch-fabric topology "
                f"with stage-fault overlays (SwitchFabricTopology); engine "
                f"has {type(topology).__name__ if topology is not None else None}"
            )
        count = 0
        for event in events:
            count += self._install_event(engine, event)
        return count

    # ------------------------------------------------------------- per event

    def _install_event(self, engine, event) -> int:
        if isinstance(event, LinkDegrade):
            prefix = event.stage_prefix

            def degrade(now: float, prefix=prefix, factor=event.factor) -> None:
                self._apply_overlay(engine, prefix, factor, False, now)

            engine.schedule_event(event.time, degrade)
            if event.duration is None:
                return 1

            def restore(now: float, prefix=prefix) -> None:
                self._clear_overlay(engine, prefix, now)

            engine.schedule_event(event.time + event.duration, restore)
            return 2
        if isinstance(event, RailFailure):
            prefixes = (
                ("nic-up", event.node, event.rail),
                ("nic-down", event.node, event.rail),
            )

            def fail(now: float, prefixes=prefixes) -> None:
                for prefix in prefixes:
                    self._apply_overlay(engine, prefix, 1.0, True, now)

            engine.schedule_event(event.time, fail)
            if event.duration is None:
                return 1

            def heal(now: float, prefixes=prefixes) -> None:
                for prefix in prefixes:
                    self._clear_overlay(engine, prefix, now)

            engine.schedule_event(event.time + event.duration, heal)
            return 2
        if isinstance(event, SlowRank):

            def slow(now: float, rank=event.rank, factor=event.factor) -> None:
                engine.set_compute_scale(rank, factor)

            engine.schedule_event(event.time, slow)
            if event.duration is None:
                return 1

            def recover(now: float, rank=event.rank) -> None:
                engine.set_compute_scale(rank, 1.0)

            engine.schedule_event(event.time + event.duration, recover)
            return 2
        if isinstance(event, NodeLoss):

            def lose(now: float, node=event.node) -> None:
                self._apply_overlay(
                    engine, ("nic-up", node), self.node_loss_factor, False, now
                )
                self._apply_overlay(
                    engine, ("nic-down", node), self.node_loss_factor, False, now
                )
                if self.on_node_loss is not None:
                    self.on_node_loss(node, now)

            engine.schedule_event(event.time, lose)
            if event.duration is None:
                return 1

            def heal(now: float, node=event.node) -> None:
                self._clear_overlay(engine, ("nic-up", node), now)
                self._clear_overlay(engine, ("nic-down", node), now)
                if self.on_node_heal is not None:
                    self.on_node_heal(node, now)

            engine.schedule_event(event.time + event.duration, heal)
            return 2
        if isinstance(event, DomainOutage):
            # the correlated expansion: every member event rides the same
            # tier -1 path, all due at the outage timestamp
            return sum(
                self._install_event(engine, member) for member in event.expand()
            )
        raise TypeError(f"unknown fault event {event!r}")  # pragma: no cover

    # ------------------------------------------------------------- plumbing

    @staticmethod
    def _notify_fair(engine, changed, now: float) -> None:
        fair = engine.topology.fair_registry
        if fair is not None and changed:
            fair.apply_capacity_change(now, changed)

    def _apply_overlay(
        self, engine, prefix, factor: float, failed: bool, now: float
    ) -> None:
        changed = engine.topology.set_stage_fault(prefix, factor=factor, failed=failed)
        self._notify_fair(engine, changed, now)

    def _clear_overlay(self, engine, prefix, now: float) -> None:
        changed = engine.topology.clear_stage_fault(prefix)
        self._notify_fair(engine, changed, now)
