"""Common infrastructure for the synthetic scientific datasets.

The paper evaluates C-Coll on three application datasets (RTM seismic
wavefields, Hurricane ISABEL weather fields, CESM-ATM climate fields) obtained
from SDRBench.  Those files are not redistributable here, so this package
generates synthetic surrogates whose *compressibility profile* (smoothness,
sparsity, value range) is tuned per application so the compressors behave in
the same qualitative regime as the paper's Tables I, II, III and VI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.utils.rng import resolve_rng

__all__ = ["Field", "smooth_random_field", "sparse_random_field"]


@dataclass(frozen=True)
class Field:
    """A named scientific field produced by one of the dataset generators.

    Attributes
    ----------
    application:
        Application family ("rtm", "hurricane", "cesm").
    name:
        Field name within the application (e.g. "QVAPORf", "CLOUD").
    data:
        The field values with their natural (2-D or 3-D) shape.
    """

    application: str
    name: str
    data: np.ndarray

    @property
    def shape(self) -> Tuple[int, ...]:
        """Natural shape of the field."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of values in the field."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Size of the field in bytes."""
        return int(self.data.nbytes)

    @property
    def value_range(self) -> float:
        """max - min of the field values."""
        return float(self.data.max() - self.data.min())

    def flatten(self) -> np.ndarray:
        """Return the field as a contiguous 1-D array (the MPI message view)."""
        return np.ascontiguousarray(self.data.reshape(-1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Field(application={self.application!r}, name={self.name!r}, "
            f"shape={self.shape}, dtype={self.data.dtype})"
        )


def smooth_random_field(
    shape: Tuple[int, ...], smoothness: float, rng=None, dtype=np.float32
) -> np.ndarray:
    """Gaussian-filtered white noise rescaled to [0, 1].

    ``smoothness`` is the Gaussian sigma in grid cells; larger values produce
    smoother (more compressible) fields.
    """
    gen = resolve_rng(rng)
    noise = gen.standard_normal(shape)
    field = ndimage.gaussian_filter(noise, sigma=smoothness, mode="wrap")
    fmin, fmax = field.min(), field.max()
    if fmax > fmin:
        field = (field - fmin) / (fmax - fmin)
    else:  # pragma: no cover - degenerate tiny shapes
        field = np.zeros(shape)
    return field.astype(dtype)


def sparse_random_field(
    shape: Tuple[int, ...],
    smoothness: float,
    coverage: float,
    rng=None,
    dtype=np.float32,
) -> np.ndarray:
    """A mostly-zero field with smooth localized structures covering ``coverage``.

    This mimics precipitation/cloud-type fields (PRECIPf, QGRAUPf, CLOUDf)
    where most of the domain is exactly zero and the non-zero regions are
    smooth blobs — the regime where SZx's constant-block detection shines.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    gen = resolve_rng(rng)
    base = smooth_random_field(shape, smoothness, gen, dtype=np.float64)
    threshold = np.quantile(base, 1.0 - coverage)
    field = np.where(base > threshold, base - threshold, 0.0)
    peak = field.max()
    if peak > 0:
        field = field / peak
    return field.astype(dtype)
