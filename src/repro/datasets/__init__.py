"""Synthetic surrogates of the paper's scientific datasets (Table IV).

See :mod:`repro.datasets.base` for why surrogates are used and how their
compressibility profiles are matched to RTM / Hurricane / CESM-ATM.
"""

from repro.datasets.base import Field, smooth_random_field, sparse_random_field
from repro.datasets.cesm import CESM_FIELDS, DEFAULT_CESM_SHAPE, generate_cesm_field
from repro.datasets.hurricane import (
    DEFAULT_HURRICANE_SHAPE,
    HURRICANE_FIELDS,
    generate_hurricane_field,
)
from repro.datasets.registry import (
    DATASET_SPECS,
    DatasetSpec,
    available_fields,
    load_field,
    message_of_size,
)
from repro.datasets.rtm import DEFAULT_RTM_SHAPE, generate_rtm_snapshot, generate_rtm_snapshots

__all__ = [
    "Field",
    "smooth_random_field",
    "sparse_random_field",
    "generate_rtm_snapshot",
    "generate_rtm_snapshots",
    "generate_hurricane_field",
    "generate_cesm_field",
    "HURRICANE_FIELDS",
    "CESM_FIELDS",
    "DATASET_SPECS",
    "DatasetSpec",
    "available_fields",
    "load_field",
    "message_of_size",
    "DEFAULT_RTM_SHAPE",
    "DEFAULT_HURRICANE_SHAPE",
    "DEFAULT_CESM_SHAPE",
]
