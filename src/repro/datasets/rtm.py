"""Synthetic RTM (reverse time migration) seismic wavefield snapshots.

The paper's largest dataset is a set of 70 RTM snapshots of shape
849 x 849 x 235 (Seismic wave propagation from the GeoDRIVE platform).  A
snapshot of a propagating wavefield has two properties that matter for the
evaluation:

* large regions that the wave has not reached yet are (numerically) zero or
  extremely smooth, which produces the very high SZx compression ratios
  (~30-120x depending on the error bound, Table II);
* the wavefront itself is an oscillatory, band-limited structure whose
  amplitude decays geometrically with distance from the source.

``generate_rtm_snapshot`` synthesises exactly that structure: expanding
spherical Ricker-like wavefronts from a few source locations, plus a small
rough component controlling how hard the data becomes at tight error bounds.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.base import Field
from repro.utils.rng import resolve_rng

__all__ = ["generate_rtm_snapshot", "generate_rtm_snapshots", "DEFAULT_RTM_SHAPE"]

DEFAULT_RTM_SHAPE: Tuple[int, int, int] = (48, 72, 72)
_WAVE_SPEED = 0.35  # grid cells per unit time step (controls front radius)
#: peak wave amplitude; seismic wavefield snapshots have small absolute values,
#: which is why the paper's absolute error bounds (1e-2 ... 1e-4) yield very
#: high compression ratios on RTM (Table II).
_WAVE_AMPLITUDE = 0.05


def _ricker(radial_offset: np.ndarray, width: float) -> np.ndarray:
    """Ricker wavelet profile (second derivative of a Gaussian)."""
    x = radial_offset / width
    return (1.0 - 2.0 * x * x) * np.exp(-x * x)


def generate_rtm_snapshot(
    shape: Tuple[int, int, int] = DEFAULT_RTM_SHAPE,
    time_index: int = 20,
    n_sources: int = 3,
    noise_amplitude: float = 2e-5,
    seed=0,
) -> Field:
    """Generate one synthetic RTM wavefield snapshot.

    Parameters
    ----------
    shape:
        Grid shape of the snapshot.
    time_index:
        Virtual time step; larger values move the wavefronts further from the
        sources (and fill more of the volume with signal).
    n_sources:
        Number of seismic sources.
    noise_amplitude:
        Amplitude of the rough component relative to the unit wave amplitude;
        this is what limits compressibility at error bounds below ~1e-4.
    seed:
        Seed (or Generator) controlling the source layout and noise.
    """
    if time_index < 0:
        raise ValueError(f"time_index must be >= 0, got {time_index}")
    rng = resolve_rng(seed)
    grid = np.indices(shape).astype(np.float64)
    field = np.zeros(shape, dtype=np.float64)

    for _ in range(max(1, int(n_sources))):
        source = np.array([rng.uniform(0.2, 0.8) * (s - 1) for s in shape])
        radius = np.sqrt(sum((grid[d] - source[d]) ** 2 for d in range(len(shape))))
        front_radius = _WAVE_SPEED * time_index
        width = 4.0 + 0.02 * time_index
        amplitude = _WAVE_AMPLITUDE / (1.0 + 0.05 * front_radius)
        wave = amplitude * _ricker(radius - front_radius, width)
        # The wave has not reached points far beyond the front yet.
        wave[radius > front_radius + 4.0 * width] = 0.0
        field += wave

    if noise_amplitude > 0:
        field += noise_amplitude * rng.standard_normal(shape)

    return Field(application="rtm", name=f"snapshot_t{time_index:04d}", data=field.astype(np.float32))


def generate_rtm_snapshots(
    count: int,
    shape: Tuple[int, int, int] = DEFAULT_RTM_SHAPE,
    start_time: int = 10,
    time_stride: int = 8,
    seed=0,
    **kwargs,
) -> List[Field]:
    """Generate a sequence of snapshots at increasing time steps.

    The snapshots share the same source layout (same seed) so that summing
    them — the image-stacking use case of Section IV-E — produces a coherent
    stacked image.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [
        generate_rtm_snapshot(
            shape=shape, time_index=start_time + i * time_stride, seed=seed, **kwargs
        )
        for i in range(count)
    ]
