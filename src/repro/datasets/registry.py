"""Dataset registry: one place that knows every application/field pair.

The experiment harness asks for fields by ``(application, field)`` name; the
registry dispatches to the right generator, records the paper's original
specification (Table IV) for documentation, and offers a convenient
``message_of_size`` helper that tiles/truncates a field to the message sizes
used in the performance figures (28 MB ... 678 MB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.datasets.base import Field
from repro.datasets.cesm import CESM_FIELDS, DEFAULT_CESM_SHAPE, generate_cesm_field
from repro.datasets.hurricane import (
    DEFAULT_HURRICANE_SHAPE,
    HURRICANE_FIELDS,
    generate_hurricane_field,
)
from repro.datasets.rtm import DEFAULT_RTM_SHAPE, generate_rtm_snapshot

__all__ = ["DatasetSpec", "DATASET_SPECS", "load_field", "available_fields", "message_of_size"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one application dataset as used in the paper (Table IV)."""

    application: str
    description: str
    paper_files: str
    paper_dimensions: Tuple[int, ...]
    fields: Tuple[str, ...]


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "rtm": DatasetSpec(
        application="rtm",
        description="Seismic wave propagation snapshots (reverse time migration)",
        paper_files="70",
        paper_dimensions=(849, 849, 235),
        fields=("snapshot",),
    ),
    "hurricane": DatasetSpec(
        application="hurricane",
        description="Hurricane ISABEL weather simulation",
        paper_files="48 x 13",
        paper_dimensions=(100, 500, 500),
        fields=tuple(sorted(HURRICANE_FIELDS)),
    ),
    "cesm": DatasetSpec(
        application="cesm",
        description="CESM-ATM climate simulation",
        paper_files="26 x 33",
        paper_dimensions=(1800, 3600),
        fields=tuple(sorted(CESM_FIELDS)),
    ),
}


def available_fields() -> Dict[str, Tuple[str, ...]]:
    """Mapping application -> tuple of field names."""
    return {app: spec.fields for app, spec in DATASET_SPECS.items()}


def load_field(application: str, field: str = None, seed=0, shape=None, **kwargs) -> Field:
    """Generate a synthetic field for ``application``/``field``.

    ``field`` defaults to the first field of the application ("snapshot" for
    RTM, alphabetically first otherwise).  ``shape`` overrides the default
    generator shape — useful for scaling message sizes up or down.
    """
    app = application.lower()
    if app not in DATASET_SPECS:
        raise KeyError(
            f"unknown application {application!r}; available: {', '.join(sorted(DATASET_SPECS))}"
        )
    spec = DATASET_SPECS[app]
    if field is None:
        field = spec.fields[0]

    if app == "rtm":
        return generate_rtm_snapshot(shape=shape or DEFAULT_RTM_SHAPE, seed=seed, **kwargs)
    if app == "hurricane":
        return generate_hurricane_field(
            name=field, shape=shape or DEFAULT_HURRICANE_SHAPE, seed=seed
        )
    return generate_cesm_field(name=field, shape=shape or DEFAULT_CESM_SHAPE, seed=seed)


def message_of_size(field: Field, nbytes: int) -> np.ndarray:
    """Return a flat array of exactly ``nbytes`` bytes built from ``field``.

    The performance figures sweep message sizes (28 MB ... 678 MB); the real
    experiments concatenate dataset files until the target size is reached.
    This helper tiles the field (with a tiny deterministic perturbation per
    repetition so repeats are not bit-identical) and truncates to the exact
    byte count.
    """
    itemsize = field.data.dtype.itemsize
    if nbytes < itemsize:
        raise ValueError(f"nbytes must be at least one element ({itemsize} bytes), got {nbytes}")
    count = nbytes // itemsize
    flat = field.flatten()
    reps = int(np.ceil(count / flat.size))
    if reps == 1:
        return flat[:count].copy()
    pieces = []
    for rep in range(reps):
        # The perturbation is far below any error bound used in the paper, it
        # only prevents artificially periodic data from inflating ratios.
        scale = 1.0 + 1e-7 * rep
        pieces.append(flat * np.float32(scale))
    return np.concatenate(pieces)[:count]
