"""Synthetic Hurricane-ISABEL-like weather fields.

The paper uses the Hurricane ISABEL simulation dataset (48 time steps x 13
fields of shape 100 x 500 x 500).  Four fields appear in the evaluation:

* ``QVAPORf`` — water-vapour mixing ratio: smooth, strictly positive, strongly
  stratified in the vertical direction (high compression ratios);
* ``PRECIPf`` — precipitation: sparse, mostly zero with smooth rain bands;
* ``QGRAUPf`` — graupel mixing ratio: very sparse (highest ratios in Table VI);
* ``CLOUDf``  — cloud water: sparse with moderate structure.

``TCf`` (temperature, roughly -75..30 degC) is additionally provided because
its O(100) value range makes it the natural stand-in for the accuracy
visualisations of Figure 14, where an absolute error bound of 1e-3 corresponds
to a PSNR around 60 dB.

The generators below synthesise fields with those sparsity/smoothness
profiles, including a rotating-vortex structure so horizontal slices look like
a hurricane eye rather than isotropic noise.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.datasets.base import Field, smooth_random_field, sparse_random_field
from repro.utils.rng import resolve_rng

__all__ = ["generate_hurricane_field", "HURRICANE_FIELDS", "DEFAULT_HURRICANE_SHAPE"]

DEFAULT_HURRICANE_SHAPE: Tuple[int, int, int] = (16, 128, 128)

#: field name -> sparsity coverage (None = dense), smoothness sigma, peak value,
#: additive offset, and rough-noise amplitude
HURRICANE_FIELDS: Dict[str, Dict[str, float]] = {
    "QVAPORf": {"coverage": None, "smoothness": 9.0, "peak": 0.02, "offset": 0.0, "noise": 2e-4},
    "TCf": {"coverage": None, "smoothness": 11.0, "peak": 105.0, "offset": -75.0, "noise": 0.02},
    "PRECIPf": {"coverage": 0.18, "smoothness": 5.0, "peak": 0.009, "offset": 0.0, "noise": 1e-5},
    "QGRAUPf": {"coverage": 0.06, "smoothness": 7.0, "peak": 0.015, "offset": 0.0, "noise": 2e-6},
    "CLOUDf": {"coverage": 0.15, "smoothness": 4.0, "peak": 0.003, "offset": 0.0, "noise": 1e-5},
}


def _vortex_mask(shape: Tuple[int, int, int], rng) -> np.ndarray:
    """Radially decaying swirl centred near the domain middle (the hurricane eye)."""
    _, ny, nx = shape
    cy = ny * rng.uniform(0.4, 0.6)
    cx = nx * rng.uniform(0.4, 0.6)
    y, x = np.mgrid[0:ny, 0:nx].astype(np.float64)
    radius = np.sqrt((y - cy) ** 2 + (x - cx) ** 2)
    swirl = np.exp(-((radius / (0.35 * min(ny, nx))) ** 2))
    return swirl[None, :, :]


def generate_hurricane_field(
    name: str = "QVAPORf",
    shape: Tuple[int, int, int] = DEFAULT_HURRICANE_SHAPE,
    seed=0,
) -> Field:
    """Generate one synthetic Hurricane field by name."""
    if name not in HURRICANE_FIELDS:
        raise KeyError(
            f"unknown Hurricane field {name!r}; available: {', '.join(sorted(HURRICANE_FIELDS))}"
        )
    spec = HURRICANE_FIELDS[name]
    rng = resolve_rng(seed)
    vortex = _vortex_mask(shape, rng)

    if spec["coverage"] is None:
        base = smooth_random_field(shape, spec["smoothness"], rng, dtype=np.float64)
        # Vertical stratification: vapour/temperature vary strongly with height.
        levels = np.linspace(1.0, 0.15, shape[0])[:, None, None]
        data = spec["peak"] * (0.35 * base + 0.65 * levels * (0.6 + 0.4 * vortex))
    else:
        base = sparse_random_field(shape, spec["smoothness"], spec["coverage"], rng, np.float64)
        data = spec["peak"] * base * (0.5 + 0.5 * vortex)

    if spec["noise"] > 0:
        data = data + spec["noise"] * rng.standard_normal(shape)
        if spec["coverage"] is not None:
            # Keep the zero background exactly zero outside the structures, as
            # in the real precipitation/cloud fields.
            data[base == 0.0] = 0.0

    data = data + spec.get("offset", 0.0)
    return Field(application="hurricane", name=name, data=data.astype(np.float32))
