"""Synthetic CESM-ATM-like climate fields.

The paper's CESM-ATM dataset (Community Earth System Model, atmosphere
component) consists of 2-D lat/lon fields of shape 1800 x 3600.  Two fields
appear in the evaluation:

* ``CLOUD`` — cloud fraction: bounded in [0, 1], patchy, and noticeably rougher
  than the RTM/Hurricane fields, which is why its compression ratios are the
  lowest of the three applications (Table II: ~2.4-23x);
* ``Q`` — specific humidity: smooth and zonally banded, with ratios around
  79x in Table VI.

The generators reproduce those textures: a zonal (latitude-dependent) base
profile, smooth planetary-scale anomalies, plus a rough small-scale component
whose amplitude controls the ratio floor at tight error bounds.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.datasets.base import Field, smooth_random_field
from repro.utils.rng import resolve_rng

__all__ = ["generate_cesm_field", "CESM_FIELDS", "DEFAULT_CESM_SHAPE"]

DEFAULT_CESM_SHAPE: Tuple[int, int] = (360, 720)

CESM_FIELDS: Dict[str, Dict[str, float]] = {
    "CLOUD": {"smoothness": 3.0, "rough": 0.08, "peak": 1.0},
    "Q": {"smoothness": 10.0, "rough": 0.004, "peak": 0.018},
}


def generate_cesm_field(
    name: str = "CLOUD",
    shape: Tuple[int, int] = DEFAULT_CESM_SHAPE,
    seed=0,
) -> Field:
    """Generate one synthetic CESM-ATM field by name."""
    if name not in CESM_FIELDS:
        raise KeyError(
            f"unknown CESM-ATM field {name!r}; available: {', '.join(sorted(CESM_FIELDS))}"
        )
    spec = CESM_FIELDS[name]
    rng = resolve_rng(seed)
    nlat, nlon = shape

    # Zonal structure: humidity and cloudiness depend strongly on latitude.
    lat = np.linspace(-np.pi / 2, np.pi / 2, nlat)[:, None]
    zonal = np.cos(lat) ** 2 + 0.15 * np.cos(3 * lat)
    zonal = (zonal - zonal.min()) / (zonal.max() - zonal.min())

    large_scale = smooth_random_field(shape, spec["smoothness"] * 4, rng, dtype=np.float64)
    meso_scale = smooth_random_field(shape, spec["smoothness"], rng, dtype=np.float64)
    rough = rng.standard_normal(shape)

    data = 0.5 * zonal + 0.3 * large_scale + 0.2 * meso_scale + spec["rough"] * rough
    data = np.clip(data, 0.0, None)
    if name == "CLOUD":
        data = np.clip(data, 0.0, 1.0)
    data = spec["peak"] * data / max(float(data.max()), 1e-12) * 1.0

    return Field(application="cesm", name=name, data=data.astype(np.float32))
