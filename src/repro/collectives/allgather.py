"""Ring allgather (the baseline algorithm of Figure 2, without compression).

Every rank contributes one block; after ``N - 1`` rounds every rank holds all
``N`` blocks.  In round ``i`` rank ``r`` sends block ``(r - i) mod N`` to its
right neighbour and receives block ``(r - i - 1) mod N`` from its left
neighbour, so each block travels once around the ring.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_ALLGATHER
from repro.mpisim.topology import Topology

__all__ = ["ring_allgather_program"]


def ring_allgather_program(
    rank: int,
    size: int,
    my_block: np.ndarray,
    ctx: CollectiveContext,
    wait_category: str = CAT_ALLGATHER,
    copy_category: str = CAT_ALLGATHER,
):
    """Rank program for the ring allgather; returns the list of all blocks."""
    blocks: List[Optional[np.ndarray]] = [None] * size
    blocks[rank] = my_block
    if size == 1:
        return blocks

    left = (rank - 1) % size
    right = (rank + 1) % size
    send_index = rank
    for step in range(size - 1):
        recv_index = (rank - step - 1) % size
        recv_req = yield Irecv(source=left, tag=step)
        send_req = yield Isend(
            dest=right,
            data=blocks[send_index],
            nbytes=ctx.vbytes(blocks[send_index]),
            tag=step,
        )
        received, _ = yield Waitall([recv_req, send_req], category=wait_category)
        blocks[recv_index] = received
        # copy the received block into the gathered output buffer
        yield Compute(ctx.memcpy_seconds(received), category=copy_category)
        send_index = recv_index
    return blocks


def _run_ring_allgather(
    inputs,
    n_ranks: int,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the ring allgather on ``n_ranks`` simulated ranks.

    ``inputs`` holds one block per rank; every rank's result is the list of
    all blocks in rank order.
    """
    ctx = ctx or CollectiveContext()
    blocks = as_rank_arrays(inputs, n_ranks)

    def factory(rank: int, size: int):
        return ring_allgather_program(rank, size, blocks[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
