"""Binomial-tree gather (the mirror image of the binomial scatter).

Each rank contributes one block; blocks flow up a binomial tree and the root
ends up with all of them in rank order.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_MEMCPY, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = ["binomial_gather_program"]


def binomial_gather_program(
    rank: int,
    size: int,
    my_block: np.ndarray,
    ctx: CollectiveContext,
    root: int = 0,
    wait_category: str = CAT_WAIT,
):
    """Rank program for the binomial gather.

    The root returns the list of all blocks in absolute rank order; every
    other rank returns ``None``.
    """
    relative = (rank - root) % size
    # collected maps relative rank -> block for the sub-tree rooted here
    collected: Dict[int, np.ndarray] = {relative: my_block}
    if size == 1:
        return [my_block]

    # receive from children (low bits first), then send to the parent
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            nbytes = sum(ctx.vbytes(b) for b in collected.values())
            req = yield Isend(dest=parent, data=dict(collected), nbytes=nbytes, tag=0)
            yield Wait(req, category=wait_category)
            return None
        child = relative + mask
        if child < size:
            source = (child + root) % size
            req = yield Irecv(source=source, tag=0)
            incoming = yield Wait(req, category=wait_category)
            yield Compute(
                ctx.cost.memcpy_seconds(sum(ctx.vbytes(b) for b in incoming.values())),
                category=CAT_MEMCPY,
            )
            collected.update(incoming)
        mask <<= 1

    # only the root reaches this point; collected is keyed by relative rank
    return [collected[(r - root) % size] for r in range(size)]


def _run_binomial_gather(
    inputs,
    n_ranks: int,
    root: int = 0,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Gather one block per rank to ``root``."""
    ctx = ctx or CollectiveContext()
    blocks = as_rank_arrays(inputs, n_ranks)

    def factory(rank: int, size: int):
        return binomial_gather_program(rank, size, blocks[rank], ctx, root=root)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
