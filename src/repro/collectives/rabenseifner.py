"""Rabenseifner allreduce: recursive-halving reduce-scatter + recursive-doubling
allgather (MPICH's long-message algorithm).

The vector is block-partitioned into ``pof2`` segments.  The reduce-scatter
phase halves the working segment every round — partners exchange the half the
other will own and reduce the half they keep — so each round moves half the
data of the previous one (``~D`` bytes total versus the doubling exchange's
``D log2(p)``).  The allgather phase retraces the same pairs in reverse,
recomposing the full vector.  Both phases follow MPICH's index bookkeeping
(``send_idx`` / ``recv_idx`` / ``last_idx``) so the communication pattern is
the real one, and the fold/unfold trick handles non-power-of-two sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.collectives.recursive_doubling import largest_power_of_two_below
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import Topology
from repro.mpisim.timeline import (
    CAT_ALLGATHER,
    CAT_MEMCPY,
    CAT_OTHERS,
    CAT_REDUCTION,
    CAT_WAIT,
)
from repro.utils.chunking import split_counts, split_displacements

__all__ = ["rabenseifner_allreduce_program"]


def rabenseifner_allreduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    ctx: CollectiveContext,
    tag_base: int = 0,
):
    """Rank program for the Rabenseifner allreduce; returns the global sum."""
    buf = np.ascontiguousarray(my_vector).reshape(-1)
    if size == 1:
        return buf.copy()

    yield Compute(ctx.alloc_seconds(buf), category=CAT_OTHERS)
    buf = buf.copy()

    pof2 = largest_power_of_two_below(size)
    rem = size - pof2

    # fold: first 2*rem ranks pair up so pof2 ranks carry the scatter phases
    if rank < 2 * rem:
        if rank % 2 == 0:
            req = yield Isend(dest=rank + 1, data=buf, nbytes=ctx.vbytes(buf), tag=tag_base)
            yield Wait(req, category=CAT_WAIT)
            newrank = -1
        else:
            req = yield Irecv(source=rank - 1, tag=tag_base)
            received = yield Wait(req, category=CAT_WAIT)
            buf = buf + received
            yield Compute(ctx.reduce_seconds(received), category=CAT_REDUCTION)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1 and pof2 > 1:
        cnts = split_counts(buf.size, pof2)
        disps = split_displacements(cnts)

        def real_rank(newdst: int) -> int:
            return newdst * 2 + 1 if newdst < rem else newdst + rem

        # ------------------------------ reduce-scatter by recursive halving
        send_idx = recv_idx = 0
        last_idx = pof2
        mask = 1
        step = 0
        while mask < pof2:
            newdst = newrank ^ mask
            dst = real_rank(newdst)
            half = pof2 // (mask * 2)
            if newrank < newdst:
                send_idx = recv_idx + half
                send_cnt = sum(cnts[send_idx:last_idx])
                recv_cnt = sum(cnts[recv_idx:send_idx])
            else:
                recv_idx = send_idx + half
                send_cnt = sum(cnts[send_idx:recv_idx])
                recv_cnt = sum(cnts[recv_idx:last_idx])
            s0 = disps[send_idx]
            r0 = disps[recv_idx]
            # copy the outgoing half so later local updates cannot race the
            # (by-reference) in-flight payload
            outgoing = buf[s0 : s0 + send_cnt].copy()
            tag = tag_base + 1 + step
            recv_req = yield Irecv(source=dst, tag=tag)
            send_req = yield Isend(dest=dst, data=outgoing, nbytes=ctx.vbytes(outgoing), tag=tag)
            received, _ = yield Waitall([recv_req, send_req], category=CAT_WAIT)
            yield Compute(ctx.memcpy_seconds(received), category=CAT_MEMCPY)
            buf[r0 : r0 + recv_cnt] = buf[r0 : r0 + recv_cnt] + received
            yield Compute(ctx.reduce_seconds(received), category=CAT_REDUCTION)
            send_idx = recv_idx
            mask <<= 1
            step += 1
            if mask < pof2:
                last_idx = recv_idx + pof2 // mask

        # ------------------------------------ allgather by recursive doubling
        mask >>= 1
        while mask > 0:
            newdst = newrank ^ mask
            dst = real_rank(newdst)
            half = pof2 // (mask * 2)
            if newrank < newdst:
                if mask != pof2 // 2:
                    last_idx = last_idx + half
                recv_idx = send_idx + half
                send_cnt = sum(cnts[send_idx:recv_idx])
                recv_cnt = sum(cnts[recv_idx:last_idx])
            else:
                recv_idx = send_idx - half
                send_cnt = sum(cnts[send_idx:last_idx])
                recv_cnt = sum(cnts[recv_idx:send_idx])
            s0 = disps[send_idx]
            r0 = disps[recv_idx]
            outgoing = buf[s0 : s0 + send_cnt].copy()
            tag = tag_base + 1 + step
            recv_req = yield Irecv(source=dst, tag=tag)
            send_req = yield Isend(dest=dst, data=outgoing, nbytes=ctx.vbytes(outgoing), tag=tag)
            received, _ = yield Waitall([recv_req, send_req], category=CAT_ALLGATHER)
            buf[r0 : r0 + recv_cnt] = received
            yield Compute(ctx.memcpy_seconds(received), category=CAT_ALLGATHER)
            if newrank > newdst:
                send_idx = recv_idx
            mask >>= 1
            step += 1

    # unfold: hand the full result back to the folded-away even ranks
    if rank < 2 * rem:
        unfold_tag = tag_base + 1 + 2 * pof2
        if rank % 2 == 1:
            req = yield Isend(dest=rank - 1, data=buf, nbytes=ctx.vbytes(buf), tag=unfold_tag)
            yield Wait(req, category=CAT_WAIT)
        else:
            req = yield Irecv(source=rank + 1, tag=unfold_tag)
            buf = yield Wait(req, category=CAT_WAIT)
            yield Compute(ctx.memcpy_seconds(buf), category=CAT_MEMCPY)
    return buf


def _run_rabenseifner_allreduce(
    inputs,
    n_ranks: int,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the Rabenseifner (reduce-scatter + allgather) allreduce."""
    ctx = ctx or CollectiveContext()
    vectors = as_rank_arrays(inputs, n_ranks)

    def factory(rank: int, size: int):
        return rabenseifner_allreduce_program(rank, size, vectors[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
