"""Binomial-tree scatter (the MPICH algorithm used by the paper's C-Scatter baseline).

The root owns one block per rank; segments of blocks travel down a binomial
tree so that every rank ends up with exactly its own block after ``log2(N)``
rounds.  Intermediate ranks receive the blocks for their whole sub-tree and
forward the halves that belong to their children.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_MEMCPY, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = ["binomial_scatter_program"]


def _segment_nbytes(blocks: List[np.ndarray], ctx: CollectiveContext) -> int:
    return sum(ctx.vbytes(b) for b in blocks)


def binomial_scatter_program(
    rank: int,
    size: int,
    root_blocks: Optional[List[np.ndarray]],
    ctx: CollectiveContext,
    root: int = 0,
    wait_category: str = CAT_WAIT,
):
    """Rank program for the binomial scatter; every rank returns its own block.

    ``root_blocks`` is the per-rank block list (indexed by *relative* rank) on
    the root and ``None`` elsewhere.
    """
    relative = (rank - root) % size
    if size == 1:
        return root_blocks[0]

    # segment[i] will hold the block for relative rank `relative + i`
    segment: Optional[List[np.ndarray]] = None
    if rank == root:
        segment = list(root_blocks)

    # receive phase
    mask = 1
    while mask < size:
        if relative & mask:
            source = (relative - mask + root) % size
            req = yield Irecv(source=source, tag=0)
            segment = yield Wait(req, category=wait_category)
            segment = list(segment)
            yield Compute(
                ctx.cost.memcpy_seconds(_segment_nbytes(segment, ctx)), category=CAT_MEMCPY
            )
            break
        mask <<= 1

    # send phase: pass the upper half of the segment to each child
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            child_count = min(mask, size - (relative + mask))
            child_segment = segment[mask : mask + child_count]
            req = yield Isend(
                dest=dest,
                data=child_segment,
                nbytes=_segment_nbytes(child_segment, ctx),
                tag=0,
            )
            yield Wait(req, category=wait_category)
            segment = segment[:mask]
        mask >>= 1

    return segment[0]


def _run_binomial_scatter(
    inputs,
    n_ranks: int,
    root: int = 0,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Scatter one block per rank from ``root``.

    ``inputs`` holds the block for each (absolute) rank; rank ``r``'s result is
    ``inputs[r]``.
    """
    ctx = ctx or CollectiveContext()
    blocks = as_rank_arrays(inputs, n_ranks)
    # the root keeps its block list in relative-rank order
    relative_blocks = [blocks[(root + i) % n_ranks] for i in range(n_ranks)]

    def factory(rank: int, size: int):
        return binomial_scatter_program(
            rank, size, relative_blocks if rank == root else None, ctx, root=root
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
