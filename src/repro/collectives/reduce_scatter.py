"""Ring reduce-scatter (the baseline algorithm of Figure 4, without compression).

Every rank starts with a full-length vector split into ``N`` chunks; after
``N - 1`` rounds rank ``r`` owns the fully reduced chunk ``r``.  In round ``i``
rank ``r`` sends its running partial sum for chunk ``(r - i - 1) mod N`` to the
right neighbour and receives the partial sum for chunk ``(r - i - 2) mod N``
from the left neighbour, reducing it into its local copy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_MEMCPY, CAT_REDUCTION, CAT_WAIT
from repro.mpisim.topology import Topology
from repro.utils.chunking import split_counts, split_displacements

__all__ = ["ring_reduce_scatter_program", "partition_chunks"]


def partition_chunks(vector: np.ndarray, n_ranks: int) -> List[np.ndarray]:
    """Split a flat vector into the ``n_ranks`` chunks used by the ring algorithms."""
    counts = split_counts(vector.size, n_ranks)
    displs = split_displacements(counts)
    return [vector[displs[i] : displs[i] + counts[i]].copy() for i in range(n_ranks)]


def ring_reduce_scatter_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    ctx: CollectiveContext,
    wait_category: str = CAT_WAIT,
    copy_category: str = CAT_MEMCPY,
    reduce_category: str = CAT_REDUCTION,
):
    """Rank program for the ring reduce-scatter; returns the rank's reduced chunk."""
    chunks = partition_chunks(my_vector, size)
    if size == 1:
        return chunks[0]

    left = (rank - 1) % size
    right = (rank + 1) % size
    for step in range(size - 1):
        send_index = (rank - step - 1) % size
        recv_index = (rank - step - 2) % size
        outgoing = chunks[send_index]
        recv_req = yield Irecv(source=left, tag=step)
        send_req = yield Isend(
            dest=right, data=outgoing, nbytes=ctx.vbytes(outgoing), tag=step
        )
        received, _ = yield Waitall([recv_req, send_req], category=wait_category)
        # stage the received chunk, then reduce it into the local partial sum
        yield Compute(ctx.memcpy_seconds(received), category=copy_category)
        chunks[recv_index] = chunks[recv_index] + received  # out-of-place: sent buffers stay intact
        yield Compute(ctx.reduce_seconds(received), category=reduce_category)
    return chunks[rank]


def _run_ring_reduce_scatter(
    inputs,
    n_ranks: int,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the ring reduce-scatter; rank ``r``'s result is reduced chunk ``r``."""
    ctx = ctx or CollectiveContext()
    vectors = as_rank_arrays(inputs, n_ranks)

    def factory(rank: int, size: int):
        return ring_reduce_scatter_program(rank, size, vectors[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
