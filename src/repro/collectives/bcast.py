"""Binomial-tree broadcast (the baseline of Figure 3, without compression).

This is the algorithm MPICH uses for broadcast: ``log2(N)`` rounds in which
each rank that already holds the data forwards it to a rank that does not.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_MEMCPY, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = ["binomial_bcast_program"]


def binomial_bcast_program(
    rank: int,
    size: int,
    data: Optional[np.ndarray],
    ctx: CollectiveContext,
    root: int = 0,
    wait_category: str = CAT_WAIT,
):
    """Rank program for the binomial broadcast; every rank returns the data."""
    if size == 1:
        return data

    relative = (rank - root) % size
    buffer = data if rank == root else None

    # receive phase: find the bit at which this rank gets the data
    mask = 1
    while mask < size:
        if relative & mask:
            source = (relative - mask + root) % size
            req = yield Irecv(source=source, tag=0)
            buffer = yield Wait(req, category=wait_category)
            yield Compute(ctx.memcpy_seconds(buffer), category=CAT_MEMCPY)
            break
        mask <<= 1

    # send phase: forward to the sub-tree below this rank
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            req = yield Isend(dest=dest, data=buffer, nbytes=ctx.vbytes(buffer), tag=0)
            yield Wait(req, category=wait_category)
        mask >>= 1

    return buffer


def _run_binomial_bcast(
    data: np.ndarray,
    n_ranks: int,
    root: int = 0,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Broadcast ``data`` from ``root``; every rank's result is the full buffer."""
    ctx = ctx or CollectiveContext()
    data = np.ascontiguousarray(data).reshape(-1)

    def factory(rank: int, size: int):
        return binomial_bcast_program(
            rank, size, data if rank == root else None, ctx, root=root
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
