"""Hierarchical (topology-aware) allreduce: reduce -> allreduce -> bcast.

On a two-level topology (see :mod:`repro.mpisim.topology`) the flat ring sends
the same number of bytes over fast intra-node links and the slow inter-node
fabric.  The hierarchical algorithm instead (1) binomial-reduces each node's
vectors to a per-node leader over the intra-node links, (2) runs a ring
allreduce among the leaders only — the sole stage crossing the inter-node
fabric — and (3) binomial-broadcasts the result back inside each node.

Per rank the ring moves ``2 (p-1)/p * D`` bytes (bandwidth-optimal), while the
leader here moves ``O(D log r)`` intra-node plus ``2 (L-1)/L * D`` inter-node
for ``r`` ranks/node and ``L`` nodes.  So on *dedicated* per-pair links the
flat ring still wins at large messages; the hierarchical variant pays off when
inter-node bandwidth is contended (:class:`SharedUplinkTopology`, where the
ring's ``r`` concurrent per-node egress flows split one uplink) or when
latency dominates.  ``bench_topology_scaling.py`` demonstrates both regimes.

The building blocks (`_group_binomial_reduce`, `_group_binomial_bcast`, and
:func:`repro.collectives.allreduce.ring_allreduce_over_group`) operate over an
explicit list of global ranks, so they compose for any placement the topology
describes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.collectives.allreduce import ring_allreduce_over_group
from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import FlatTopology, Topology
from repro.mpisim.timeline import CAT_MEMCPY, CAT_OTHERS, CAT_REDUCTION, CAT_WAIT

__all__ = ["hierarchical_allreduce_program", "node_groups"]

#: tag blocks separating the three stages
_TAG_REDUCE = 0
_TAG_INTER = 10_000
_TAG_BCAST = 20_000


def _group_binomial_reduce(
    my_idx: int,
    group: List[int],
    vec: np.ndarray,
    ctx: CollectiveContext,
    tag: int,
):
    """Binomial-tree sum reduction of ``vec`` to ``group[0]``; returns the
    partial sum held by this rank (the full sum on the group root)."""
    mask = 1
    while mask < len(group):
        if my_idx & mask:
            dst = group[my_idx - mask]
            req = yield Isend(dest=dst, data=vec, nbytes=ctx.vbytes(vec), tag=tag)
            yield Wait(req, category=CAT_WAIT)
            break
        src_idx = my_idx + mask
        if src_idx < len(group):
            req = yield Irecv(source=group[src_idx], tag=tag)
            received = yield Wait(req, category=CAT_WAIT)
            vec = vec + received
            yield Compute(ctx.reduce_seconds(received), category=CAT_REDUCTION)
        mask <<= 1
    return vec


def _group_binomial_bcast(
    my_idx: int,
    group: List[int],
    vec: Optional[np.ndarray],
    ctx: CollectiveContext,
    tag: int,
):
    """Binomial-tree broadcast of ``vec`` from ``group[0]``; returns the buffer."""
    mask = 1
    while mask < len(group):
        if my_idx & mask:
            src = group[my_idx - mask]
            req = yield Irecv(source=src, tag=tag)
            vec = yield Wait(req, category=CAT_WAIT)
            yield Compute(ctx.memcpy_seconds(vec), category=CAT_MEMCPY)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if my_idx + mask < len(group):
            dst = group[my_idx + mask]
            req = yield Isend(dest=dst, data=vec, nbytes=ctx.vbytes(vec), tag=tag)
            yield Wait(req, category=CAT_WAIT)
        mask >>= 1
    return vec


def node_groups(topology: Topology, n_ranks: int):
    """Precompute ``(peers_by_rank, leaders)`` for one communicator.

    ``peers_by_rank[r]`` lists the ranks co-located with ``r`` (rank order)
    and ``leaders`` the lowest rank of each node.  Runners call this once and
    hand the lists to every rank program, avoiding ``n_ranks`` redundant
    O(n_ranks) placement scans.
    """
    by_node: dict = {}
    for r in range(n_ranks):
        by_node.setdefault(topology.node_of(r), []).append(r)
    peers_by_rank = {r: by_node[topology.node_of(r)] for r in range(n_ranks)}
    leaders = [ranks[0] for ranks in by_node.values()]
    return peers_by_rank, leaders


def hierarchical_allreduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    ctx: CollectiveContext,
    topology: Topology,
    peers: Optional[List[int]] = None,
    leaders: Optional[List[int]] = None,
):
    """Rank program for the hierarchical allreduce; returns the global sum.

    ``peers``/``leaders`` may be precomputed via :func:`node_groups`; when
    omitted they are derived from ``topology``.
    """
    vec = np.ascontiguousarray(my_vector).reshape(-1).copy()
    if size == 1:
        return vec

    yield Compute(ctx.alloc_seconds(vec), category=CAT_OTHERS)

    peers = peers if peers is not None else topology.node_ranks(rank, size)
    leaders = leaders if leaders is not None else topology.node_leaders(size)
    my_idx = peers.index(rank)
    is_leader = rank == peers[0]

    # stage 1: intra-node binomial reduce to the node leader
    vec = yield from _group_binomial_reduce(my_idx, peers, vec, ctx, tag=_TAG_REDUCE)

    # stage 2: inter-node ring allreduce among the node leaders
    if is_leader and len(leaders) > 1:
        vec = yield from ring_allreduce_over_group(
            leaders.index(rank), leaders, vec, ctx, tag_base=_TAG_INTER
        )

    # stage 3: intra-node binomial broadcast of the reduced vector
    vec = yield from _group_binomial_bcast(
        my_idx, peers, vec if is_leader else None, ctx, tag=_TAG_BCAST
    )
    return vec


def _run_hierarchical_allreduce(
    inputs,
    n_ranks: int,
    topology: Optional[Topology] = None,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the hierarchical allreduce.

    ``topology`` drives both the rank grouping and the link timing; with the
    default flat topology every rank is its own node, so the algorithm
    degenerates to the plain ring allreduce among all ranks.
    """
    topology = topology if topology is not None else FlatTopology()
    ctx = ctx or CollectiveContext()
    vectors = as_rank_arrays(inputs, n_ranks)
    peers_by_rank, leaders = node_groups(topology, n_ranks)

    def factory(rank: int, size: int):
        return hierarchical_allreduce_program(
            rank, size, vectors[rank], ctx, topology,
            peers=peers_by_rank[rank], leaders=leaders,
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
