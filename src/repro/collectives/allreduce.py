"""Ring allreduce (reduce-scatter + allgather), the paper's main baseline (AD).

The ring allreduce moves ``2 (N-1)/N * D`` bytes per rank for a ``D``-byte
vector, which is bandwidth-optimal and the reason the paper (Section III-E)
uses it for long messages.  The time breakdown labels match Figure 7:
reduce-scatter waits are "Wait", its copies "Memcpy", its reductions
"Reduction", the whole allgather stage is "Allgather", and buffer management
is "Others".
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.collectives.reduce_scatter import partition_chunks
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_ALLGATHER, CAT_MEMCPY, CAT_OTHERS, CAT_REDUCTION, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = ["ring_allreduce_over_group", "ring_allreduce_program"]


def ring_allreduce_over_group(
    my_idx: int,
    group: List[int],
    my_vector: np.ndarray,
    ctx: CollectiveContext,
    tag_base: int = 0,
):
    """Ring allreduce (reduce-scatter + allgather) over an explicit rank group.

    ``group`` lists the participating global ranks in ring order and
    ``my_idx`` is this rank's position in it.  This is the single ring
    implementation: the flat baseline runs it over ``range(size)`` and the
    hierarchical allreduce over the node leaders.
    """
    size = len(group)
    chunks = partition_chunks(my_vector, size)
    if size == 1:
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    left = group[(my_idx - 1) % size]
    right = group[(my_idx + 1) % size]

    # ---------------------------------------------------------- reduce-scatter
    for step in range(size - 1):
        send_index = (my_idx - step - 1) % size
        recv_index = (my_idx - step - 2) % size
        outgoing = chunks[send_index]
        tag = tag_base + step
        recv_req = yield Irecv(source=left, tag=tag)
        send_req = yield Isend(
            dest=right, data=outgoing, nbytes=ctx.vbytes(outgoing), tag=tag
        )
        received, _ = yield Waitall([recv_req, send_req], category=CAT_WAIT)
        yield Compute(ctx.memcpy_seconds(received), category=CAT_MEMCPY)
        chunks[recv_index] = chunks[recv_index] + received
        yield Compute(ctx.reduce_seconds(received), category=CAT_REDUCTION)

    # ------------------------------------------------------------- allgather
    send_index = my_idx
    for step in range(size - 1):
        recv_index = (my_idx - step - 1) % size
        outgoing = chunks[send_index]
        tag = tag_base + size + step
        recv_req = yield Irecv(source=left, tag=tag)
        send_req = yield Isend(
            dest=right, data=outgoing, nbytes=ctx.vbytes(outgoing), tag=tag
        )
        received, _ = yield Waitall([recv_req, send_req], category=CAT_ALLGATHER)
        chunks[recv_index] = received
        yield Compute(ctx.memcpy_seconds(received), category=CAT_ALLGATHER)
        send_index = recv_index

    return np.concatenate(chunks)


def ring_allreduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    ctx: CollectiveContext,
):
    """Rank program for the uncompressed ring allreduce; returns the reduced vector."""
    if size == 1:
        chunks = partition_chunks(my_vector, size)
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    # working buffers for the whole collective ("Others" in Figure 7)
    yield Compute(ctx.alloc_seconds(my_vector), category=CAT_OTHERS)
    result = yield from ring_allreduce_over_group(rank, list(range(size)), my_vector, ctx)
    return result


def _run_ring_allreduce(
    inputs,
    n_ranks: int,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the uncompressed ring allreduce (the paper's AD baseline)."""
    ctx = ctx or CollectiveContext()
    vectors = as_rank_arrays(inputs, n_ranks)

    def factory(rank: int, size: int):
        return ring_allreduce_program(rank, size, vectors[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
