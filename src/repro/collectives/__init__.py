"""Stock MPI collective algorithms (the uncompressed baselines).

These are the algorithms the paper's evaluation compares against (its "AD" /
"Baseline" bars): ring allgather, ring reduce-scatter, ring allreduce,
binomial-tree broadcast / scatter / gather / reduce, and pairwise all-to-all.
The C-Coll variants in :mod:`repro.ccoll` reuse the same communication
structures with compression integrated.
"""

from repro.collectives.allgather import ring_allgather_program, run_ring_allgather
from repro.collectives.allreduce import ring_allreduce_program, run_ring_allreduce
from repro.collectives.alltoall import pairwise_alltoall_program, run_pairwise_alltoall
from repro.collectives.bcast import binomial_bcast_program, run_binomial_bcast
from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.collectives.gather import binomial_gather_program, run_binomial_gather
from repro.collectives.reduce import binomial_reduce_program, run_binomial_reduce
from repro.collectives.reduce_scatter import (
    partition_chunks,
    ring_reduce_scatter_program,
    run_ring_reduce_scatter,
)
from repro.collectives.scatter import binomial_scatter_program, run_binomial_scatter

__all__ = [
    "CollectiveContext",
    "CollectiveOutcome",
    "as_rank_arrays",
    "partition_chunks",
    "ring_allgather_program",
    "run_ring_allgather",
    "ring_reduce_scatter_program",
    "run_ring_reduce_scatter",
    "ring_allreduce_program",
    "run_ring_allreduce",
    "binomial_bcast_program",
    "run_binomial_bcast",
    "binomial_scatter_program",
    "run_binomial_scatter",
    "binomial_gather_program",
    "run_binomial_gather",
    "binomial_reduce_program",
    "run_binomial_reduce",
    "pairwise_alltoall_program",
    "run_pairwise_alltoall",
]
