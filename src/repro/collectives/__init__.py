"""Stock MPI collective algorithms (the uncompressed baselines).

These are the algorithms the paper's evaluation compares against (its "AD" /
"Baseline" bars): ring allgather, ring reduce-scatter, ring allreduce,
binomial-tree broadcast / scatter / gather / reduce, and pairwise all-to-all —
plus the MPICH-style allreduce alternatives (recursive doubling, Rabenseifner,
hierarchical) and the tuning-table selector that picks between them by message
size, rank count and topology.  The C-Coll variants in :mod:`repro.ccoll`
reuse the same communication structures with compression integrated.
"""

from repro.collectives.allgather import ring_allgather_program, run_ring_allgather
from repro.collectives.allreduce import ring_allreduce_program, run_ring_allreduce
from repro.collectives.alltoall import pairwise_alltoall_program, run_pairwise_alltoall
from repro.collectives.barrier import barrier_program
from repro.collectives.bcast import binomial_bcast_program, run_binomial_bcast
from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.collectives.gather import binomial_gather_program, run_binomial_gather
from repro.collectives.hierarchical import (
    hierarchical_allreduce_program,
    run_hierarchical_allreduce,
)
from repro.collectives.rabenseifner import (
    rabenseifner_allreduce_program,
    run_rabenseifner_allreduce,
)
from repro.collectives.recursive_doubling import (
    recursive_doubling_allreduce_program,
    run_recursive_doubling_allreduce,
)
from repro.collectives.reduce import binomial_reduce_program, run_binomial_reduce
from repro.collectives.reduce_scatter import (
    partition_chunks,
    ring_reduce_scatter_program,
    run_ring_reduce_scatter,
)
from repro.collectives.scatter import binomial_scatter_program, run_binomial_scatter
from repro.collectives.selection import (
    ALGORITHM_RUNNERS,
    run_allreduce,
    select_algorithm,
)

__all__ = [
    "CollectiveContext",
    "CollectiveOutcome",
    "as_rank_arrays",
    "barrier_program",
    "partition_chunks",
    "ring_allgather_program",
    "run_ring_allgather",
    "ring_reduce_scatter_program",
    "run_ring_reduce_scatter",
    "ring_allreduce_program",
    "run_ring_allreduce",
    "recursive_doubling_allreduce_program",
    "run_recursive_doubling_allreduce",
    "rabenseifner_allreduce_program",
    "run_rabenseifner_allreduce",
    "hierarchical_allreduce_program",
    "run_hierarchical_allreduce",
    "ALGORITHM_RUNNERS",
    "select_algorithm",
    "run_allreduce",
    "binomial_bcast_program",
    "run_binomial_bcast",
    "binomial_scatter_program",
    "run_binomial_scatter",
    "binomial_gather_program",
    "run_binomial_gather",
    "binomial_reduce_program",
    "run_binomial_reduce",
    "pairwise_alltoall_program",
    "run_pairwise_alltoall",
]
