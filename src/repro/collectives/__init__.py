"""Stock MPI collective algorithms (the uncompressed baselines).

These are the algorithms the paper's evaluation compares against (its "AD" /
"Baseline" bars): ring allgather, ring reduce-scatter, ring allreduce,
binomial-tree broadcast / scatter / gather / reduce, and pairwise all-to-all —
plus the MPICH-style allreduce alternatives (recursive doubling, Rabenseifner,
hierarchical) and the tuning-table selector that picks between them by message
size, rank count and topology.  The C-Coll variants in :mod:`repro.ccoll`
reuse the same communication structures with compression integrated.
"""

from repro.collectives.allgather import ring_allgather_program
from repro.collectives.allreduce import ring_allreduce_program
from repro.collectives.alltoall import pairwise_alltoall_program
from repro.collectives.barrier import barrier_program
from repro.collectives.bcast import binomial_bcast_program
from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.collectives.gather import binomial_gather_program
from repro.collectives.hierarchical import (
    hierarchical_allreduce_program,
)
from repro.collectives.rabenseifner import (
    rabenseifner_allreduce_program,
)
from repro.collectives.recursive_doubling import (
    recursive_doubling_allreduce_program,
)
from repro.collectives.reduce import binomial_reduce_program
from repro.collectives.reduce_scatter import (
    partition_chunks,
    ring_reduce_scatter_program,
)
from repro.collectives.scatter import binomial_scatter_program
from repro.collectives.selection import (
    ALGORITHM_RUNNERS,
    select_algorithm,
)

__all__ = [
    "CollectiveContext",
    "CollectiveOutcome",
    "as_rank_arrays",
    "barrier_program",
    "partition_chunks",
    "ring_allgather_program",
    "ring_reduce_scatter_program",
    "ring_allreduce_program",
    "recursive_doubling_allreduce_program",
    "rabenseifner_allreduce_program",
    "hierarchical_allreduce_program",
    "ALGORITHM_RUNNERS",
    "select_algorithm",
    "binomial_bcast_program",
    "binomial_scatter_program",
    "binomial_gather_program",
    "binomial_reduce_program",
    "pairwise_alltoall_program",
]
