"""Binomial-tree reduce (SUM) to a root rank.

Partial sums flow up a binomial tree; the root ends up with the element-wise
sum of every rank's vector.  This is the collective behind the image-stacking
use case when only the root needs the stacked image.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_REDUCTION, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = ["binomial_reduce_program"]


def binomial_reduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    ctx: CollectiveContext,
    root: int = 0,
    wait_category: str = CAT_WAIT,
):
    """Rank program for the binomial reduce; the root returns the sum, others None."""
    relative = (rank - root) % size
    accumulator = my_vector
    if size == 1:
        return accumulator

    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            req = yield Isend(
                dest=parent, data=accumulator, nbytes=ctx.vbytes(accumulator), tag=0
            )
            yield Wait(req, category=wait_category)
            return None
        child = relative + mask
        if child < size:
            source = (child + root) % size
            req = yield Irecv(source=source, tag=0)
            incoming = yield Wait(req, category=wait_category)
            accumulator = accumulator + incoming
            yield Compute(ctx.reduce_seconds(incoming), category=CAT_REDUCTION)
        mask <<= 1
    return accumulator


def _run_binomial_reduce(
    inputs,
    n_ranks: int,
    root: int = 0,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Sum one vector per rank onto ``root``."""
    ctx = ctx or CollectiveContext()
    vectors = as_rank_arrays(inputs, n_ranks)

    def factory(rank: int, size: int):
        return binomial_reduce_program(rank, size, vectors[rank], ctx, root=root)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
