"""Recursive-doubling allreduce (MPICH's short-message algorithm).

Every rank exchanges its full running sum with a partner at distance ``1, 2,
4, ...``; after ``log2(p)`` rounds all ranks hold the global sum.  The
algorithm is latency-optimal (``log2(p)`` rounds versus the ring's ``2(p-1)``)
but moves the full vector every round, so MPICH selects it only for short
messages — the regime :func:`repro.collectives.selection.select_algorithm`
reproduces.

Non-power-of-two communicators use the standard fold/unfold: the first
``2 * (p - pof2)`` ranks pair up, the even partner folds its vector into the
odd one and idles, the surviving ``pof2`` ranks run the doubling exchange, and
the result is copied back to the idle partners at the end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import Topology
from repro.mpisim.timeline import CAT_MEMCPY, CAT_OTHERS, CAT_REDUCTION, CAT_WAIT

__all__ = ["recursive_doubling_allreduce_program"]


def largest_power_of_two_below(n: int) -> int:
    """Largest power of two that is <= ``n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n.bit_length() - 1)


def recursive_doubling_allreduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    ctx: CollectiveContext,
    tag_base: int = 0,
):
    """Rank program for the recursive-doubling allreduce; returns the global sum."""
    vec = np.ascontiguousarray(my_vector).reshape(-1)
    if size == 1:
        return vec.copy()

    yield Compute(ctx.alloc_seconds(vec), category=CAT_OTHERS)
    vec = vec.copy()

    pof2 = largest_power_of_two_below(size)
    rem = size - pof2

    # fold: the first 2*rem ranks pair up so pof2 ranks survive
    if rank < 2 * rem:
        if rank % 2 == 0:
            req = yield Isend(dest=rank + 1, data=vec, nbytes=ctx.vbytes(vec), tag=tag_base)
            yield Wait(req, category=CAT_WAIT)
            newrank = -1
        else:
            req = yield Irecv(source=rank - 1, tag=tag_base)
            received = yield Wait(req, category=CAT_WAIT)
            vec = vec + received
            yield Compute(ctx.reduce_seconds(received), category=CAT_REDUCTION)
            newrank = rank // 2
    else:
        newrank = rank - rem

    # doubling exchange among the pof2 survivors
    if newrank != -1:
        mask = 1
        while mask < pof2:
            newdst = newrank ^ mask
            dst = newdst * 2 + 1 if newdst < rem else newdst + rem
            tag = tag_base + 1 + mask
            recv_req = yield Irecv(source=dst, tag=tag)
            send_req = yield Isend(dest=dst, data=vec, nbytes=ctx.vbytes(vec), tag=tag)
            received, _ = yield Waitall([recv_req, send_req], category=CAT_WAIT)
            vec = vec + received
            yield Compute(ctx.reduce_seconds(received), category=CAT_REDUCTION)
            mask <<= 1

    # unfold: hand the result back to the folded-away even ranks
    if rank < 2 * rem:
        unfold_tag = tag_base + 1 + pof2
        if rank % 2 == 1:
            req = yield Isend(dest=rank - 1, data=vec, nbytes=ctx.vbytes(vec), tag=unfold_tag)
            yield Wait(req, category=CAT_WAIT)
        else:
            req = yield Irecv(source=rank + 1, tag=unfold_tag)
            vec = yield Wait(req, category=CAT_WAIT)
            yield Compute(ctx.memcpy_seconds(vec), category=CAT_MEMCPY)
    return vec


def _run_recursive_doubling_allreduce(
    inputs,
    n_ranks: int,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the recursive-doubling allreduce on the simulated fabric."""
    ctx = ctx or CollectiveContext()
    vectors = as_rank_arrays(inputs, n_ranks)

    def factory(rank: int, size: int):
        return recursive_doubling_allreduce_program(rank, size, vectors[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
