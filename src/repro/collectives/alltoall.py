"""Pairwise-exchange all-to-all.

Rank ``r`` holds one block destined for every other rank; after ``N - 1``
exchange steps (in step ``i`` rank ``r`` sends to ``(r + i) mod N`` and
receives from ``(r - i) mod N``) every rank holds the blocks addressed to it.
This is the algorithm MPICH uses for long messages.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.collectives.context import CollectiveContext, CollectiveOutcome
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_MEMCPY, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = ["pairwise_alltoall_program"]


def pairwise_alltoall_program(
    rank: int,
    size: int,
    my_blocks: List[np.ndarray],
    ctx: CollectiveContext,
    wait_category: str = CAT_WAIT,
):
    """Rank program for the pairwise all-to-all.

    ``my_blocks[d]`` is the block this rank sends to rank ``d``; the result is
    the list of blocks received from every rank (own block included).
    """
    received: List[Optional[np.ndarray]] = [None] * size
    received[rank] = my_blocks[rank]
    yield Compute(ctx.memcpy_seconds(my_blocks[rank]), category=CAT_MEMCPY)

    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        recv_req = yield Irecv(source=source, tag=step)
        send_req = yield Isend(
            dest=dest, data=my_blocks[dest], nbytes=ctx.vbytes(my_blocks[dest]), tag=step
        )
        incoming, _ = yield Waitall([recv_req, send_req], category=wait_category)
        received[source] = incoming
        yield Compute(ctx.memcpy_seconds(incoming), category=CAT_MEMCPY)
    return received


def _run_pairwise_alltoall(
    inputs: List[List[np.ndarray]],
    n_ranks: int,
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the pairwise all-to-all.

    ``inputs[r][d]`` is the block rank ``r`` sends to rank ``d``; rank ``r``'s
    result is ``[inputs[0][r], inputs[1][r], ...]``.
    """
    ctx = ctx or CollectiveContext()
    if len(inputs) != n_ranks or any(len(row) != n_ranks for row in inputs):
        raise ValueError("inputs must be an n_ranks x n_ranks matrix of blocks")
    blocks = [[np.ascontiguousarray(b).reshape(-1) for b in row] for row in inputs]

    def factory(rank: int, size: int):
        return pairwise_alltoall_program(rank, size, blocks[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
