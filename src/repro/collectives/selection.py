"""Collective algorithm selection (MPICH-style tuning table, topology-aware).

MPICH picks its allreduce algorithm from a tuning table keyed on message size
and communicator size: recursive doubling for short messages (latency-bound,
``log2(p)`` rounds), Rabenseifner's reduce-scatter + allgather for long ones,
and a ring for the very largest buffers.  :func:`select_algorithm` reproduces
that table and extends it with a topology- and placement-aware rule: when
ranks are co-located on nodes whose uplinks are *shared* (oversubscribed
egress), the schedule is chosen from the actual placement
(:func:`classify_placement` walks ``Topology.node_of``): a uniform block
layout keeps Rabenseifner's largest halving steps intra-node (so it stays
selected), lopsided-but-contiguous nodes fall back to the hierarchical
algorithm (ring at very large sizes), and interleaved/cyclic placements —
where every flat schedule's exchanges go inter-node — always take the
hierarchical path, which sends each node's data over the fabric exactly once
per ring step.

The thresholds are expressed in *virtual* bytes (the size the network model
sees), matching how the harness scales messages.  They were tuned for the
calibrated fabric; on fabrics whose effective inter-node bandwidth differs —
an oversubscribed fat tree, a rail-optimised multi-NIC host — the table
rescales them by ``effective_bandwidth / calibrated_bandwidth``, so the
latency/bandwidth crossover points land where they belong (a 2:1-tapered tree
becomes bandwidth-bound at half the message size).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.collectives.allreduce import _run_ring_allreduce
from repro.collectives.context import CollectiveContext, CollectiveOutcome
from repro.collectives.hierarchical import _run_hierarchical_allreduce
from repro.collectives.rabenseifner import _run_rabenseifner_allreduce
from repro.collectives.recursive_doubling import _run_recursive_doubling_allreduce
from repro.mpisim.backends import Backend
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import DEFAULT_INTER_BANDWIDTH, Topology

__all__ = [
    "ALGORITHM_RUNNERS",
    "PLACEMENT_BLOCK",
    "PLACEMENT_INTERLEAVED",
    "PLACEMENT_IRREGULAR",
    "SHORT_MESSAGE_BYTES",
    "RING_MIN_BYTES",
    "DEGRADED_TIER_FACTOR",
    "bandwidth_scale",
    "classify_placement",
    "select_algorithm",
]

#: below this size the exchange is latency-bound: recursive doubling
SHORT_MESSAGE_BYTES = 32 * 1024
#: at and above this size the bandwidth-optimal ring wins over Rabenseifner's
#: log-round schedule (fewer, larger transfers amortize the per-round latency)
RING_MIN_BYTES = 4 * 1024 * 1024
#: at and above this fault degradation (nominal / degraded effective
#: bandwidth, see ``Topology.fault_degradation``) the selector steers flat
#: schedules off the fabric: once the inter-node tier runs at half rate or
#: worse, minimising fabric crossings beats minimising rounds
DEGRADED_TIER_FACTOR = 2.0


def bandwidth_scale(topology: Optional[Topology]) -> float:
    """Ratio of the topology's effective inter-node bandwidth to the calibration.

    The size thresholds of the tuning table are proportional to the wire
    bandwidth (they mark latency/bandwidth crossovers), so a fabric delivering
    half the calibrated bandwidth — e.g. a 2:1-oversubscribed fat tree at
    equal per-node NIC rate — halves them.  Returns 1.0 when the topology
    does not report an effective bandwidth (flat / global-model fabrics).
    """
    if topology is None:
        return 1.0
    effective = topology.effective_inter_bandwidth()
    if effective is None or effective <= 0:
        return 1.0
    return effective / DEFAULT_INTER_BANDWIDTH

#: uniform contiguous runs: every node's ranks are consecutive and all nodes
#: host the same count (a short final node is still "block")
PLACEMENT_BLOCK = "block"
#: contiguous runs of unequal sizes (lopsided nodes)
PLACEMENT_IRREGULAR = "irregular"
#: at least one node's ranks are non-consecutive (cyclic / scattered)
PLACEMENT_INTERLEAVED = "interleaved"


def classify_placement(topology: Topology, n_ranks: int) -> str:
    """Classify how ``topology`` places ``n_ranks`` ranks onto nodes.

    Walks :meth:`Topology.node_of` in rank order.  ``"interleaved"`` means a
    node is revisited after its run ended (round-robin / scattered placement),
    ``"irregular"`` means runs are contiguous but node populations differ
    (beyond a short final node), ``"block"`` is the uniform contiguous layout
    every flat schedule was calibrated on.
    """
    counts: Dict[int, int] = {}
    seen = set()
    prev: Optional[int] = None
    contiguous = True
    for rank in range(n_ranks):
        node = topology.node_of(rank)
        counts[node] = counts.get(node, 0) + 1
        if node != prev:
            if node in seen:
                contiguous = False
            seen.add(node)
            prev = node
    if not contiguous:
        return PLACEMENT_INTERLEAVED
    sizes = list(counts.values())
    if len(sizes) > 1 and any(size != sizes[0] for size in sizes[:-1]):
        return PLACEMENT_IRREGULAR
    if len(sizes) > 1 and sizes[-1] > sizes[0]:
        return PLACEMENT_IRREGULAR
    return PLACEMENT_BLOCK


#: algorithm name -> runner with the uniform (inputs, n_ranks, ...) signature
ALGORITHM_RUNNERS: Dict[str, Callable[..., CollectiveOutcome]] = {
    "ring": _run_ring_allreduce,
    "recursive_doubling": _run_recursive_doubling_allreduce,
    "rabenseifner": _run_rabenseifner_allreduce,
    "hierarchical": _run_hierarchical_allreduce,
}


def select_algorithm(
    nbytes: int,
    n_ranks: int,
    topology: Optional[Topology] = None,
) -> str:
    """Pick an allreduce algorithm for a ``nbytes`` message on ``n_ranks`` ranks.

    Returns one of ``"recursive_doubling"``, ``"rabenseifner"``, ``"ring"`` or
    ``"hierarchical"`` (keys of :data:`ALGORITHM_RUNNERS`).
    """
    if n_ranks <= 2:
        # one exchange either way; the doubling schedule is the simplest
        return "recursive_doubling"
    scale = bandwidth_scale(topology)
    if nbytes < SHORT_MESSAGE_BYTES * scale:
        return "recursive_doubling"
    if (
        topology is not None
        and topology.shares_uplinks
        and topology.max_ranks_per_node(n_ranks) > 1
        and topology.n_nodes(n_ranks) > 1
    ):
        # Co-located ranks contending for shared egress: the right schedule
        # depends on where the ranks actually sit, so consult the placement
        # instead of assuming block.
        placement = classify_placement(topology, n_ranks)
        if placement == PLACEMENT_BLOCK:
            if topology.fault_degradation() >= DEGRADED_TIER_FACTOR:
                # A degraded inter-node tier penalises every algorithm whose
                # critical path crosses the fabric: Rabenseifner's halving
                # steps keep crossing it per round, while hierarchical sends
                # each node's data over the fabric exactly once per ring step
                # (leaders only) — the fewest degraded-tier crossings.
                return "hierarchical"
            # Rabenseifner's largest halving steps pair adjacent ranks, which
            # a uniform block layout keeps intra-node (free of the shared
            # uplink); measured 25-35% faster than hierarchical across the
            # rendezvous band, and it stays ahead of the ring at large sizes
            # because its inter-node exchanges shrink geometrically.
            return "rabenseifner"
        if placement == PLACEMENT_IRREGULAR:
            # Lopsided-but-contiguous nodes break the halving alignment, so
            # Rabenseifner degrades; the ring only crosses nodes at run
            # boundaries, which wins once bandwidth dominates.
            return "hierarchical" if nbytes < RING_MIN_BYTES * scale else "ring"
        # Interleaved (cyclic / scattered): every flat schedule's neighbour
        # exchanges go inter-node and pile onto the shared uplinks;
        # hierarchical is the only placement-robust choice.
        return "hierarchical"
    if nbytes >= RING_MIN_BYTES * scale:
        return "ring"
    return "rabenseifner"


def _run_allreduce(
    inputs,
    n_ranks: int,
    algorithm: str = "auto",
    ctx: Optional[CollectiveContext] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> Tuple[CollectiveOutcome, str]:
    """Run an allreduce, selecting the algorithm from the tuning table.

    ``algorithm`` may name any entry of :data:`ALGORITHM_RUNNERS` or be
    ``"auto"`` to consult :func:`select_algorithm` with the per-rank virtual
    message size.  Returns ``(outcome, algorithm_used)``.
    """
    ctx = ctx or CollectiveContext()
    if algorithm == "auto":
        # size-probe without expanding: as_rank_arrays copies per rank, and
        # the selected runner normalises the inputs itself anyway
        if isinstance(inputs, np.ndarray):
            probe = inputs
        else:
            inputs = list(inputs)
            if not inputs:
                raise ValueError(f"expected {n_ranks} per-rank arrays, got 0")
            probe = np.asarray(inputs[0])
        algorithm = select_algorithm(ctx.vbytes(probe), n_ranks, topology)
    runner = ALGORITHM_RUNNERS.get(algorithm)
    if runner is None:
        raise ValueError(
            f"unknown allreduce algorithm {algorithm!r}; "
            f"available: {', '.join(ALGORITHM_RUNNERS)} or 'auto'"
        )
    kwargs: Dict[str, Any] = {
        "ctx": ctx,
        "network": network,
        "topology": topology,
        "backend": backend,
    }
    return runner(inputs, n_ranks, **kwargs), algorithm
