"""Barrier synchronisation (MPI_Barrier).

The engine's :class:`~repro.mpisim.commands.Barrier` command already
synchronises all ranks at the maximum arrival time; this module merely wraps
it in the standard rank-program / runner pair so the facade
(:meth:`repro.api.Communicator.barrier`) can expose it through the same
backend seam as every other collective.  There is no legacy ``run_*`` shim:
the barrier first became public with the session API.
"""

from __future__ import annotations

from typing import Optional

from repro.collectives.context import CollectiveOutcome
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Barrier
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = ["barrier_program"]


def barrier_program(rank: int, size: int, category: str = CAT_WAIT):
    """Rank program: synchronise with every other rank, return ``None``."""
    yield Barrier(category=category)
    return None


def _run_barrier(
    n_ranks: int,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run a barrier across ``n_ranks`` ranks."""
    sim = _execute(backend, n_ranks, barrier_program, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
