"""Shared execution context for collective algorithms.

Every collective rank program (both the stock baselines in this package and
the C-Coll variants in :mod:`repro.ccoll`) needs two things besides the data:

* a :class:`~repro.perfmodel.CostModel` to convert local work (memcpy,
  reduction, compression) into virtual seconds, and
* the *size multiplier* trick: the harness can declare that every real byte in
  the simulation stands for ``size_multiplier`` virtual bytes, so that the
  paper's 28-678 MB message sweeps can be simulated with proportionally
  smaller (but still real) arrays without changing any algorithm code.  All
  virtual byte counts — network message sizes and compute durations alike —
  are scaled consistently through this context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from repro.mpisim.engine import payload_nbytes
from repro.mpisim.launcher import SimulationResult
from repro.perfmodel.costmodel import CostModel
from repro.utils.validation import ensure_positive

__all__ = ["CollectiveContext", "CollectiveOutcome", "as_rank_arrays"]


@dataclass(frozen=True)
class CollectiveContext:
    """Cost model plus virtual-size scaling shared by all collective programs."""

    cost: CostModel = field(default_factory=CostModel.broadwell_omnipath)
    size_multiplier: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.size_multiplier, "size_multiplier")

    # ------------------------------------------------------------- virtual sizes

    def vbytes(self, data: Any) -> int:
        """Virtual size (bytes) of a payload as seen by the network and cost model."""
        return int(round(payload_nbytes(data) * self.size_multiplier))

    def vbytes_raw(self, nbytes: float) -> int:
        """Scale an explicit real byte count to virtual bytes."""
        return int(round(float(nbytes) * self.size_multiplier))

    # ------------------------------------------------------------ local compute

    def memcpy_seconds(self, data: Any) -> float:
        """Virtual time to copy ``data`` locally."""
        return self.cost.memcpy_seconds(self.vbytes(data))

    def reduce_seconds(self, data: Any) -> float:
        """Virtual time to reduce ``data`` element-wise with another operand."""
        return self.cost.reduce_seconds(self.vbytes(data))

    def alloc_seconds(self, data: Any) -> float:
        """Virtual time to allocate a buffer the size of ``data``."""
        return self.cost.alloc_seconds(self.vbytes(data))

    def compress_seconds(self, codec: Any, data: Any, ratio: Optional[float] = None) -> float:
        """Virtual time to compress ``data`` (uncompressed size) with ``codec``."""
        return self.cost.compress_seconds(codec, self.vbytes(data), ratio=ratio)

    def decompress_seconds(self, codec: Any, data: Any, ratio: Optional[float] = None) -> float:
        """Virtual time to decompress back to ``data``'s uncompressed size."""
        return self.cost.decompress_seconds(codec, self.vbytes(data), ratio=ratio)


@dataclass
class CollectiveOutcome:
    """Return value of every collective runner: per-rank results plus the simulation."""

    values: List[Any]
    sim: SimulationResult

    @property
    def total_time(self) -> float:
        """Virtual makespan of the collective."""
        return self.sim.total_time

    def value(self, rank: int) -> Any:
        """Result of one rank."""
        return self.values[rank]


def as_rank_arrays(inputs, n_ranks: int) -> List[np.ndarray]:
    """Normalise collective input into one flat float array per rank.

    ``inputs`` may be a list with one array per rank, or a single array that
    every rank contributes identically (convenient in tests and examples).
    The single-array form is expanded into *independent copies*: rank programs
    may mutate their buffer in place, and sharing one ndarray across all ranks
    would let one rank's mutation corrupt every other rank's input.
    """
    if isinstance(inputs, np.ndarray):
        inputs = [inputs.copy() for _ in range(n_ranks)]
    inputs = list(inputs)
    if len(inputs) != n_ranks:
        raise ValueError(f"expected {n_ranks} per-rank arrays, got {len(inputs)}")
    arrays = []
    for rank, arr in enumerate(inputs):
        arr = np.ascontiguousarray(arr).reshape(-1)
        if not np.issubdtype(arr.dtype, np.floating):
            raise TypeError(f"rank {rank} input must be a float array, got {arr.dtype}")
        arrays.append(arr)
    first = arrays[0]
    for rank, arr in enumerate(arrays):
        if arr.size != first.size or arr.dtype != first.dtype:
            raise ValueError("all per-rank arrays must share the same length and dtype")
    return arrays
